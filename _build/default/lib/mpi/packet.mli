(** Wire packets exchanged by the CH3-style device through a channel.

    Two protocols, as in MPICH2:
    - {e eager}: payload travels with the envelope; used up to the eager
      threshold. An unmatched eager message is buffered in the receiver's
      unexpected queue and copied again when the receive is finally posted.
    - {e rendezvous}: RTS announces the message; the receiver replies CTS
      once a matching receive provides a buffer; DATA then moves the payload
      in one pass, zero-copy into the user buffer. Synchronous-mode sends
      (MPI_Ssend) always take this path regardless of size. *)

type envelope = {
  e_src : int;  (** world rank of sender *)
  e_dst : int;
  e_tag : int;
  e_context : int;  (** communicator context id *)
  e_bytes : int;  (** payload size *)
  e_seq : int;  (** per-sender sequence number (debugging / ordering) *)
}

type t =
  | Eager of envelope * Bytes.t
  | Rts of envelope * int  (** rendezvous id *)
  | Cts of int  (** rendezvous id, sent back to the RTS sender *)
  | Rndv_data of int * Bytes.t

val header_bytes : int
(** Fixed per-packet header size used for wire-cost accounting. *)

val wire_bytes : t -> int
val describe : t -> string
