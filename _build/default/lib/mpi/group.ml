type t = { g : int array }

let of_ranks ranks =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if r < 0 then invalid_arg "Group.of_ranks: negative rank";
      if Hashtbl.mem seen r then invalid_arg "Group.of_ranks: duplicate rank";
      Hashtbl.add seen r ())
    ranks;
  { g = Array.of_list ranks }

let of_comm comm = { g = Array.copy comm.Comm.members }
let size t = Array.length t.g
let members t = Array.copy t.g

let rank_of t world_rank =
  let n = Array.length t.g in
  let rec go i =
    if i >= n then None else if t.g.(i) = world_rank then Some i else go (i + 1)
  in
  go 0

let world_rank t i =
  if i < 0 || i >= Array.length t.g then
    invalid_arg "Group.world_rank: out of range";
  t.g.(i)

let mem t world_rank = rank_of t world_rank <> None

let incl t group_ranks =
  of_ranks (List.map (world_rank t) group_ranks)

let excl t group_ranks =
  List.iter
    (fun i ->
      if i < 0 || i >= Array.length t.g then
        invalid_arg "Group.excl: out of range")
    group_ranks;
  let dropped = List.sort_uniq compare group_ranks in
  if List.length dropped <> List.length group_ranks then
    invalid_arg "Group.excl: duplicate rank";
  {
    g =
      Array.of_list
        (List.filteri
           (fun i _ -> not (List.mem i dropped))
           (Array.to_list t.g));
  }

let union a b =
  {
    g =
      Array.append a.g
        (Array.of_list
           (List.filter (fun r -> not (mem a r)) (Array.to_list b.g)));
  }

let intersection a b =
  { g = Array.of_list (List.filter (mem b) (Array.to_list a.g)) }

let difference a b =
  { g = Array.of_list (List.filter (fun r -> not (mem b r)) (Array.to_list a.g)) }

let equal a b = a.g = b.g

let similar a b =
  Array.length a.g = Array.length b.g
  && List.sort compare (Array.to_list a.g)
     = List.sort compare (Array.to_list b.g)

(* Collective communicator creation: all members of [comm] call it with
   the same group; agreement on the context id comes from the shared
   deterministic allocator keyed by the group's membership. *)
let comm_create p comm group =
  Array.iter
    (fun r ->
      if Comm.comm_rank_of comm r = None then
        invalid_arg "Group.comm_create: group member outside the communicator")
    group.g;
  let e = Mpi.next_epoch p comm in
  let key =
    Printf.sprintf "create/%d/%d/%s" comm.Comm.ctx e
      (String.concat "," (List.map string_of_int (Array.to_list group.g)))
  in
  let ctx = Mpi.alloc_context (Mpi.world_of p) ~key in
  (* Synchronise as MPI_Comm_create does. *)
  Collectives.barrier p comm;
  if mem group (Mpi.rank p) then Some (Comm.make ~ctx ~members:group.g)
  else None

let pp ppf t =
  Format.fprintf ppf "group[%s]"
    (String.concat ";" (List.map string_of_int (Array.to_list t.g)))
