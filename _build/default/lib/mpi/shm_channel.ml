let create env ~n_ranks =
  let cost = env.Simtime.Env.cost in
  Channel.make ~name:"shm" ~per_msg_ns:cost.shm_per_msg_ns
    ~per_byte_ns:cost.shm_ns_per_byte ~syscall_fraction:0.5 ~env ~n_ranks
