(** MPI-2-style dynamic process management.

    [spawn] is collective over the parent communicator: new ranks are added
    to the world, started as fibers, and connected to the parents through an
    intercommunicator — the dynamic process management functionality the
    paper lists among Motor's implemented MPI-2 features (Section 7). *)

type intercomm = {
  ic_local : Comm.t;  (** the group this process belongs to *)
  ic_remote : Comm.t;  (** the other side, sharing the same context *)
  ic_merge_ctx : int;  (** context reserved for {!merge} *)
  ic_is_parent : bool;  (** true on the spawning side *)
}

val spawn :
  Mpi.proc ->
  comm:Comm.t ->
  n:int ->
  (Mpi.proc -> intercomm -> unit) ->
  intercomm
(** Every member of [comm] must call [spawn]; rank 0 actually creates the
    [n] children, which run the given body. Must be called from inside a
    fiber scheduler. From the parents' perspective [ic_local] is [comm] and
    [ic_remote] addresses the children; the children see the mirror
    image. *)

val merge : Mpi.proc -> intercomm -> Comm.t
(** Intracommunicator over local-then-remote members ([MPI_Intercomm_merge]
    with the parents first). Deterministic: both sides compute the same
    communicator. *)

val remote_size : intercomm -> int

val send :
  Mpi.proc -> intercomm -> dst:int -> tag:int -> Buffer_view.t -> unit
(** Send to remote rank [dst] through the intercommunicator context. *)

val recv :
  Mpi.proc -> intercomm -> src:int -> tag:int -> Buffer_view.t -> Status.t
(** Receive from remote rank [src] (or {!Tag_match.any_source}). *)
