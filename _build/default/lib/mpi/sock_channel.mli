(** TCP-socket channel (MPICH2's "sock", the configuration the paper's
    experiments use over localhost). *)

val create : Simtime.Env.t -> n_ranks:int -> Channel.t
