type t = {
  grid_comm : Comm.t;
  dims : int array;
  periodic : bool array;
}

let dims_create ~nnodes ~ndims =
  if nnodes < 1 || ndims < 1 then invalid_arg "Cart.dims_create";
  let dims = Array.make ndims 1 in
  (* Greedy balanced factorisation: repeatedly assign the largest prime
     factor to the currently smallest dimension. *)
  let rec factors n d acc =
    if n = 1 then acc
    else if n mod d = 0 then factors (n / d) d (d :: acc)
    else factors n (d + 1) acc
  in
  let fs = List.sort (fun a b -> compare b a) (factors nnodes 2 []) in
  List.iter
    (fun f ->
      let min_i = ref 0 in
      Array.iteri (fun i d -> if d < dims.(!min_i) then min_i := i) dims;
      dims.(!min_i) <- dims.(!min_i) * f)
    fs;
  Array.sort (fun a b -> compare b a) dims;
  dims

let create p comm ~dims ~periodic =
  if Array.length dims <> Array.length periodic then
    invalid_arg "Cart.create: dims/periodic length mismatch";
  Array.iter (fun d -> if d < 1 then invalid_arg "Cart.create: bad dim") dims;
  let nnodes = Array.fold_left ( * ) 1 dims in
  if nnodes > Comm.size comm then
    invalid_arg "Cart.create: grid larger than the communicator";
  let group = Group.incl (Group.of_comm comm) (List.init nnodes Fun.id) in
  match Group.comm_create p comm group with
  | None -> None
  | Some grid_comm ->
      Some { grid_comm; dims = Array.copy dims; periodic = Array.copy periodic }

let comm t = t.grid_comm
let ndims t = Array.length t.dims
let dims t = Array.copy t.dims

let coords t rank =
  if rank < 0 || rank >= Comm.size t.grid_comm then
    invalid_arg "Cart.coords: rank out of range";
  let n = ndims t in
  let out = Array.make n 0 in
  let rest = ref rank in
  for d = n - 1 downto 0 do
    out.(d) <- !rest mod t.dims.(d);
    rest := !rest / t.dims.(d)
  done;
  out

let rank_of_coords t cs =
  if Array.length cs <> ndims t then
    invalid_arg "Cart.rank_of_coords: rank mismatch";
  let ok = ref true in
  let rank = ref 0 in
  Array.iteri
    (fun d c ->
      let c =
        if t.periodic.(d) then ((c mod t.dims.(d)) + t.dims.(d)) mod t.dims.(d)
        else c
      in
      if c < 0 || c >= t.dims.(d) then ok := false
      else rank := (!rank * t.dims.(d)) + c)
    cs;
  if !ok then Some !rank else None

let my_coords t p = coords t (Mpi.comm_rank p t.grid_comm)

let shift t p ~dim ~disp =
  if dim < 0 || dim >= ndims t then invalid_arg "Cart.shift: bad dimension";
  let me = my_coords t p in
  let at delta =
    let cs = Array.copy me in
    cs.(dim) <- cs.(dim) + delta;
    rank_of_coords t cs
  in
  (at (-disp), at disp)
