(** Communicators: an ordered member group plus isolated context ids.

    Point-to-point traffic uses [ctx]; collectives use [ctx_coll] — the
    MPICH convention of allocating two context ids per communicator so a
    user receive can never match a collective's internal message. *)

type t = {
  ctx : int;  (** point-to-point context id *)
  ctx_coll : int;  (** collective context id *)
  members : int array;  (** world ranks; index = communicator rank *)
}

val make : ctx:int -> members:int array -> t
(** [ctx_coll] is [ctx + 1]; allocate contexts in steps of two. *)

val size : t -> int
val world_rank_of : t -> int -> int
(** Raises [Invalid_argument] on an out-of-range communicator rank. *)

val comm_rank_of : t -> int -> int option
(** Communicator rank of a world rank, if a member. *)

val pp : Format.formatter -> t -> unit
