(** Completion status of a receive, mirroring [MPI_Status]. *)

type t = {
  source : int;  (** world rank of the sender *)
  tag : int;
  bytes : int;  (** message payload size *)
}

val empty : t
val pp : Format.formatter -> t -> unit
