(** Shared-memory channel (MPICH2's "shm"): low latency, high bandwidth. *)

val create : Simtime.Env.t -> n_ranks:int -> Channel.t
