(* Tags are internal to the collective context; a distinct tag per
   algorithm (and per round, for the barrier) keeps rounds from matching
   each other. *)
let tag_barrier = 0x4210
let tag_bcast = 0x4243
let tag_scatter = 0x5343
let tag_gather = 0x4743
let tag_allgather = 0x414c
let tag_reduce = 0x5244
let tag_alltoall = 0x4141

let csend p comm ~dst ~tag buf =
  Ch3.isend (Mpi.device p)
    ~dst:(Comm.world_rank_of comm dst)
    ~tag ~context:comm.Comm.ctx_coll buf

let crecv p comm ~src ~tag buf =
  Ch3.irecv (Mpi.device p)
    ~src:(Comm.world_rank_of comm src)
    ~tag ~context:comm.Comm.ctx_coll buf

let csend_wait p comm ~dst ~tag buf =
  ignore (Mpi.wait p (csend p comm ~dst ~tag buf))

let crecv_wait p comm ~src ~tag buf =
  ignore (Mpi.wait p (crecv p comm ~src ~tag buf))

let empty = Buffer_view.of_bytes Bytes.empty

let barrier p comm =
  let n = Comm.size comm in
  let me = Mpi.comm_rank p comm in
  let round = ref 0 in
  let step = ref 1 in
  while !step < n do
    let dst = (me + !step) mod n in
    let src = (me - !step + n) mod n in
    let tag = tag_barrier + !round in
    let s = csend p comm ~dst ~tag empty in
    crecv_wait p comm ~src ~tag empty;
    ignore (Mpi.wait p s);
    incr round;
    step := !step lsl 1
  done

let bcast p comm ~root buf =
  let n = Comm.size comm in
  let me = Mpi.comm_rank p comm in
  let rel = (me - root + n) mod n in
  let abs r = (r + root) mod n in
  (* Receive from the parent (clear the lowest set bit of rel). *)
  let mask = ref 1 in
  let recv_mask = ref 0 in
  while !mask < n && !recv_mask = 0 do
    if rel land !mask <> 0 then begin
      crecv_wait p comm ~src:(abs (rel - !mask)) ~tag:tag_bcast buf;
      recv_mask := !mask
    end
    else mask := !mask lsl 1
  done;
  (* Forward to children: bits below my lowest set bit (or below n for
     the root). *)
  let top = if rel = 0 then
      let rec up m = if m < n then up (m lsl 1) else m in
      up 1
    else !recv_mask
  in
  let m = ref (top lsr 1) in
  while !m > 0 do
    if rel + !m < n then
      csend_wait p comm ~dst:(abs (rel + !m)) ~tag:tag_bcast buf;
    m := !m lsr 1
  done

let scatter p comm ~root ~parts ~recv =
  let n = Comm.size comm in
  let me = Mpi.comm_rank p comm in
  if me = root then begin
    let parts =
      match parts with
      | Some a ->
          if Array.length a <> n then
            invalid_arg "Collectives.scatter: need one part per member";
          a
      | None -> invalid_arg "Collectives.scatter: root must supply parts"
    in
    let sends = ref [] in
    for r = 0 to n - 1 do
      if r <> root then
        sends := csend p comm ~dst:r ~tag:tag_scatter parts.(r) :: !sends
    done;
    (* Root's own part: local copy. *)
    Buffer_view.write_all recv (Buffer_view.read_all parts.(root));
    Simtime.Env.charge_per_byte (Mpi.env (Mpi.world_of p))
      (Mpi.env (Mpi.world_of p)).Simtime.Env.cost.memcpy_ns_per_byte
      (Buffer_view.length recv);
    List.iter (fun s -> ignore (Mpi.wait p s)) !sends
  end
  else crecv_wait p comm ~src:root ~tag:tag_scatter recv

let gather p comm ~root ~send ~parts =
  let n = Comm.size comm in
  let me = Mpi.comm_rank p comm in
  if me = root then begin
    let parts =
      match parts with
      | Some a ->
          if Array.length a <> n then
            invalid_arg "Collectives.gather: need one part per member";
          a
      | None -> invalid_arg "Collectives.gather: root must supply parts"
    in
    let recvs = ref [] in
    for r = 0 to n - 1 do
      if r <> root then
        recvs := crecv p comm ~src:r ~tag:tag_gather parts.(r) :: !recvs
    done;
    Buffer_view.write_all parts.(root) (Buffer_view.read_all send);
    Simtime.Env.charge_per_byte (Mpi.env (Mpi.world_of p))
      (Mpi.env (Mpi.world_of p)).Simtime.Env.cost.memcpy_ns_per_byte
      (Buffer_view.length send);
    List.iter (fun r -> ignore (Mpi.wait p r)) !recvs
  end
  else csend_wait p comm ~dst:root ~tag:tag_gather send

let allgather p comm ~send =
  let n = Comm.size comm in
  let me = Mpi.comm_rank p comm in
  let blk = Bytes.length send in
  let blocks = Array.init n (fun _ -> Bytes.create blk) in
  Bytes.blit send 0 blocks.(me) 0 blk;
  let right = (me + 1) mod n in
  let left = (me - 1 + n) mod n in
  for step = 0 to n - 2 do
    let send_idx = (me - step + n) mod n in
    let recv_idx = (me - step - 1 + n) mod n in
    let s =
      csend p comm ~dst:right ~tag:(tag_allgather + step)
        (Buffer_view.of_bytes blocks.(send_idx))
    in
    crecv_wait p comm ~src:left ~tag:(tag_allgather + step)
      (Buffer_view.of_bytes blocks.(recv_idx));
    ignore (Mpi.wait p s)
  done;
  blocks

let alltoall p comm ~send =
  let n = Comm.size comm in
  let me = Mpi.comm_rank p comm in
  if Array.length send <> n then
    invalid_arg "Collectives.alltoall: need one block per member";
  let blk = Bytes.length send.(0) in
  Array.iter
    (fun b ->
      if Bytes.length b <> blk then
        invalid_arg "Collectives.alltoall: blocks must have equal length")
    send;
  let recv = Array.init n (fun _ -> Bytes.create blk) in
  Bytes.blit send.(me) 0 recv.(me) 0 blk;
  (* Post everything non-blocking, then drain: no ordering deadlocks. *)
  let reqs = ref [] in
  for r = 0 to n - 1 do
    if r <> me then begin
      reqs :=
        crecv p comm ~src:r ~tag:tag_alltoall (Buffer_view.of_bytes recv.(r))
        :: csend p comm ~dst:r ~tag:tag_alltoall
             (Buffer_view.of_bytes send.(r))
        :: !reqs
    end
  done;
  List.iter (fun req -> ignore (Mpi.wait p req)) !reqs;
  recv

let reduce p comm ~root ~op send =
  let n = Comm.size comm in
  let me = Mpi.comm_rank p comm in
  let rel = (me - root + n) mod n in
  let abs r = (r + root) mod n in
  let len = Bytes.length send in
  let acc = Bytes.copy send in
  let tmp = Bytes.create len in
  let mask = ref 1 in
  let sent = ref false in
  while !mask < n && not !sent do
    if rel land !mask = 0 then begin
      let src_rel = rel lor !mask in
      if src_rel < n then begin
        crecv_wait p comm ~src:(abs src_rel) ~tag:tag_reduce
          (Buffer_view.of_bytes tmp);
        op acc tmp
      end
    end
    else begin
      let dst_rel = rel land lnot !mask in
      csend_wait p comm ~dst:(abs dst_rel) ~tag:tag_reduce
        (Buffer_view.of_bytes acc);
      sent := true
    end;
    mask := !mask lsl 1
  done;
  if me = root then Some acc else None

let allreduce p comm ~op send =
  let result =
    match reduce p comm ~root:0 ~op send with
    | Some acc -> acc
    | None -> Bytes.create (Bytes.length send)
  in
  bcast p comm ~root:0 (Buffer_view.of_bytes result);
  result

let tag_scan = 0x5343

(* Linear pipeline scan: member r receives the prefix of 0..r-1 from its
   left neighbour, folds its own contribution, and forwards. MPI requires
   rank order for non-commutative operators, which this preserves. *)
let scan p comm ~op send =
  let n = Comm.size comm in
  let me = Mpi.comm_rank p comm in
  let acc = Bytes.copy send in
  if me > 0 then begin
    let prefix = Bytes.create (Bytes.length send) in
    crecv_wait p comm ~src:(me - 1) ~tag:tag_scan
      (Buffer_view.of_bytes prefix);
    (* acc := prefix op mine, keeping rank order. *)
    let mine = Bytes.copy acc in
    Bytes.blit prefix 0 acc 0 (Bytes.length acc);
    op acc mine
  end;
  if me < n - 1 then
    csend_wait p comm ~dst:(me + 1) ~tag:tag_scan (Buffer_view.of_bytes acc);
  acc

let reduce_scatter_block p comm ~op send =
  let n = Comm.size comm in
  let total = Bytes.length send in
  if total mod n <> 0 then
    invalid_arg
      "Collectives.reduce_scatter_block: length must be a multiple of the \
       communicator size";
  let block = total / n in
  let me = Mpi.comm_rank p comm in
  let full =
    match reduce p comm ~root:0 ~op send with
    | Some acc -> acc
    | None -> Bytes.create total
  in
  let mine = Bytes.create block in
  let parts =
    if me = 0 then
      Some
        (Array.init n (fun r ->
             Buffer_view.of_bytes_sub full ~off:(r * block) ~len:block))
    else None
  in
  scatter p comm ~root:0 ~parts ~recv:(Buffer_view.of_bytes mine);
  mine

(* Predefined operators. *)

let fold_f64 f acc x =
  let n = Bytes.length acc / 8 in
  for i = 0 to n - 1 do
    let a = Int64.float_of_bits (Bytes.get_int64_le acc (8 * i)) in
    let b = Int64.float_of_bits (Bytes.get_int64_le x (8 * i)) in
    Bytes.set_int64_le acc (8 * i) (Int64.bits_of_float (f a b))
  done

let fold_i32 f acc x =
  let n = Bytes.length acc / 4 in
  for i = 0 to n - 1 do
    let a = Int32.to_int (Bytes.get_int32_le acc (4 * i)) in
    let b = Int32.to_int (Bytes.get_int32_le x (4 * i)) in
    Bytes.set_int32_le acc (4 * i) (Int32.of_int (f a b))
  done

let fold_i64 f acc x =
  let n = Bytes.length acc / 8 in
  for i = 0 to n - 1 do
    let a = Bytes.get_int64_le acc (8 * i) in
    let b = Bytes.get_int64_le x (8 * i) in
    Bytes.set_int64_le acc (8 * i) (f a b)
  done

let sum_f64 acc x = fold_f64 ( +. ) acc x
let sum_i32 acc x = fold_i32 ( + ) acc x
let sum_i64 acc x = fold_i64 Int64.add acc x
let max_f64 acc x = fold_f64 Float.max acc x
let min_f64 acc x = fold_f64 Float.min acc x
let max_i32 acc x = fold_i32 max acc x
