(** Cartesian process topologies ([MPI_Cart_create] and friends).

    Maps a communicator onto an n-dimensional grid (row-major rank
    ordering, as in MPICH) with optional periodicity per dimension —
    the addressing scheme stencil codes use for neighbour exchange. *)

type t

val create :
  Mpi.proc -> Comm.t -> dims:int array -> periodic:bool array -> t option
(** Collective over [comm]. The product of [dims] must not exceed the
    communicator size; members beyond the grid get [None] (as with
    [MPI_Cart_create] without reordering). *)

val dims_create : nnodes:int -> ndims:int -> int array
(** [MPI_Dims_create]: factor [nnodes] into [ndims] balanced dimensions
    (most-balanced first). *)

val comm : t -> Comm.t
(** The grid communicator (a sub-communicator of the parent). *)

val ndims : t -> int
val dims : t -> int array
val coords : t -> int -> int array
(** Grid coordinates of a grid rank ([MPI_Cart_coords]). *)

val rank_of_coords : t -> int array -> int option
(** [MPI_Cart_rank]; [None] when a non-periodic coordinate is out of
    range, otherwise periodic dimensions wrap. *)

val my_coords : t -> Mpi.proc -> int array

val shift : t -> Mpi.proc -> dim:int -> disp:int -> int option * int option
(** [MPI_Cart_shift]: (source, destination) grid ranks for a displacement
    along a dimension; [None] plays MPI_PROC_NULL at a non-periodic
    boundary. *)
