type t = {
  source : int;
  tag : int;
  bytes : int;
}

let empty = { source = -1; tag = -1; bytes = 0 }

let pp ppf t =
  Format.fprintf ppf "{src=%d; tag=%d; bytes=%d}" t.source t.tag t.bytes
