(** Nonblocking operation handles, mirroring [MPI_Request].

    A request is the unit the paper's conditional pin mechanism watches: the
    garbage collector's mark phase asks [is_complete] to decide whether a
    non-blocking operation still needs its buffer pinned (Section 4.3). *)

type kind = Send_req | Recv_req

type t

val create : id:int -> kind -> t
val id : t -> int
val kind : t -> kind
val is_complete : t -> bool
val complete : t -> Status.t option -> unit
(** Idempotent-hostile: completing twice is a protocol bug and raises
    [Invalid_argument]. *)

val status : t -> Status.t option
(** [Some] once a receive has completed. *)

val on_complete : t -> (unit -> unit) -> unit
(** Register a callback fired at completion (buffer-pool recycling, tests).
    Fires immediately if already complete. *)
