type envelope = {
  e_src : int;
  e_dst : int;
  e_tag : int;
  e_context : int;
  e_bytes : int;
  e_seq : int;
}

type t =
  | Eager of envelope * Bytes.t
  | Rts of envelope * int
  | Cts of int
  | Rndv_data of int * Bytes.t

let header_bytes = 48

let wire_bytes = function
  | Eager (_, b) -> header_bytes + Bytes.length b
  | Rts (_, _) -> header_bytes
  | Cts _ -> header_bytes
  | Rndv_data (_, b) -> header_bytes + Bytes.length b

let describe = function
  | Eager (e, b) ->
      Printf.sprintf "eager %d->%d tag=%d %dB" e.e_src e.e_dst e.e_tag
        (Bytes.length b)
  | Rts (e, id) ->
      Printf.sprintf "rts %d->%d tag=%d %dB id=%d" e.e_src e.e_dst e.e_tag
        e.e_bytes id
  | Cts id -> Printf.sprintf "cts id=%d" id
  | Rndv_data (id, b) ->
      Printf.sprintf "data id=%d %dB" id (Bytes.length b)
