(** Managed-wrapper MPI bindings: the Indiana C# bindings and mpiJava.

    Same zero-copy device underneath as Motor (the paper re-hosted every
    binding over the same MPICH2), but the access path is what the paper
    criticises (Sections 2.2–2.3):

    - every call crosses a {!Call_gate} (marshalling + security);
    - the buffer is pinned for {e every} operation — the wrapper cannot
      see the generations, so it cannot skip or defer;
    - a per-byte toll on the managed/native boundary;
    - while blocked in native MPI the thread cannot yield to the
      collector: the polling wait does not GC-poll. *)

module Comm = Mpi_core.Comm

val send :
  mech:Call_gate.mechanism ->
  Motor.World.rank_ctx -> comm:Comm.t -> dst:int -> tag:int ->
  Vm.Object_model.obj -> unit

val recv :
  mech:Call_gate.mechanism ->
  Motor.World.rank_ctx -> comm:Comm.t -> src:int -> tag:int ->
  Vm.Object_model.obj -> Mpi_core.Status.t

val send_serialized :
  mech:Call_gate.mechanism ->
  Motor.World.rank_ctx -> comm:Comm.t -> dst:int -> tag:int ->
  Bytes.t -> unit
(** Size header then payload, both through the gateway, payload from an
    unmanaged temporary (standard serializers produce one). *)

val recv_serialized :
  mech:Call_gate.mechanism ->
  Motor.World.rank_ctx -> comm:Comm.t -> src:int -> tag:int -> Bytes.t
