lib/baselines/wrapper_scatter.ml: List Motor Mpi_core Std_serializer Vm Wrapper_transport
