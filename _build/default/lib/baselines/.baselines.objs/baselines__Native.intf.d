lib/baselines/native.mli: Bytes Mpi_core
