lib/baselines/wrapper_transport.ml: Bytes Call_gate Int64 Motor Mpi_core Simtime Vm
