lib/baselines/call_gate.ml: Simtime
