lib/baselines/native.ml: Mpi_core
