lib/baselines/wrapper_scatter.mli: Call_gate Motor Mpi_core Std_serializer Vm
