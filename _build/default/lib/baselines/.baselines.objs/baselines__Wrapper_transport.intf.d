lib/baselines/wrapper_transport.mli: Bytes Call_gate Motor Mpi_core Vm
