lib/baselines/std_serializer.mli: Bytes Vm
