lib/baselines/std_serializer.ml: Array Buffer Hashtbl Int32 List Motor Simtime String Vm
