lib/baselines/call_gate.mli: Simtime
