(** Object-array scatter/gather the way a managed wrapper must do it.

    Section 2.4: with an atomic standard serialization format, scattering
    an array of objects over N hosts forces the library to "create N new
    sub-arrays and serialize them individually". This module implements
    exactly that emulation over the standard serializers and the wrapper
    transport, as the comparison point for Motor's split representation. *)

module Comm = Mpi_core.Comm

val scatter_objects :
  mech:Call_gate.mechanism ->
  profile:Std_serializer.profile ->
  Motor.World.rank_ctx ->
  comm:Comm.t ->
  root:int ->
  Vm.Object_model.obj option ->
  Vm.Object_model.obj
(** Root passes [Some array] (a reference array); every member receives a
    fresh sub-array with its contiguous share. The root pays for
    materializing one managed sub-array per member plus one standard
    serialization each. *)

val gather_objects :
  mech:Call_gate.mechanism ->
  profile:Std_serializer.profile ->
  Motor.World.rank_ctx ->
  comm:Comm.t ->
  root:int ->
  Vm.Object_model.obj ->
  Vm.Object_model.obj option
(** Dual direction: members serialize their arrays individually; the root
    deserializes each and concatenates into one array. *)
