module Comm = Mpi_core.Comm
module Mpi = Mpi_core.Mpi
module Bv = Mpi_core.Buffer_view

let send p ~comm ~dst ~tag buf = Mpi.send p ~comm ~dst ~tag (Bv.of_bytes buf)

let recv p ~comm ~src ~tag buf =
  Mpi.recv p ~comm ~src ~tag (Bv.of_bytes buf)
