(** Managed-to-native call mechanisms: P/Invoke and JNI.

    Unlike Motor's FCall, these gateways marshal every argument, run
    security checks, and — crucially — the native code on the far side
    cannot yield to the garbage collector: a pending collection stays
    pending for the duration of the call (paper Sections 2.2, 5.1). *)

type mechanism = Pinvoke | Jni

val enter : mechanism -> Simtime.Env.t -> args:int -> unit
(** Charge the base cost plus per-argument marshalling; bump the
    corresponding counter. Performs no GC poll, by design. *)

val mechanism_name : mechanism -> string
