module Env = Simtime.Env
module Gc = Vm.Gc
module Om = Vm.Object_model
module Heap = Vm.Heap
module Classes = Vm.Classes
module Types = Vm.Types

exception Stack_overflow_sim

type profile = {
  sp_name : string;
  per_obj_ns : float;
  per_byte_ns : float;
  deser_per_obj_ns : float;
  deser_per_byte_ns : float;
  reflect_field_ns : float;
  recursion_limit : int option;
  block_mode_threshold : int option;
  block_mode_factor : float;
  regime_switch_ns : float;
}

(* Per-object figures follow the presets in Simtime.Cost; the paper's
   Figure 10 caption notes how much slower the shared-source CLI's
   formatter is than the commercial .NET one. *)
let clr_sscli =
  {
    sp_name = "CLI binary serializer (SSCLI)";
    per_obj_ns = 8_200.0;
    per_byte_ns = 1.1;
    deser_per_obj_ns = 2_600.0;
    deser_per_byte_ns = 1.1;
    reflect_field_ns = 900.0;
    recursion_limit = None;
    block_mode_threshold = None;
    block_mode_factor = 1.0;
    regime_switch_ns = 0.0;
  }

let clr_dotnet =
  {
    clr_sscli with
    sp_name = "CLI binary serializer (.NET)";
    per_obj_ns = 2_400.0;
    per_byte_ns = 0.9;
    deser_per_obj_ns = 900.0;
    deser_per_byte_ns = 0.9;
    reflect_field_ns = 300.0;
  }

let java =
  {
    sp_name = "Java object serialization";
    per_obj_ns = 3_000.0;
    per_byte_ns = 1.0;
    deser_per_obj_ns = 1_400.0;
    deser_per_byte_ns = 1.0;
    reflect_field_ns = 450.0;
    (* Recursive writeObject: linked lists deeper than this blow the
       stack, which in the paper stops mpiJava past 1024 total objects. *)
    recursion_limit = Some 768;
    (* Block-data mode keeps small graphs cheap; outgrowing it costs a
       reorganisation and a dearer per-object regime — the "bump". *)
    block_mode_threshold = Some 256;
    block_mode_factor = 0.55;
    regime_switch_ns = 900_000.0;
  }

(* Wire layout is identical to Motor.Serializer's (magic, type table,
   records, root id), so decoding is delegated to it; only the traversal —
   recursive, opt-out, reflection-priced — differs. *)

let u8 b v = Buffer.add_uint8 b v
let u16 b v = Buffer.add_uint16_le b v
let u32 b v = Buffer.add_int32_le b (Int32.of_int v)

let str b s =
  u16 b (String.length s);
  Buffer.add_string b s

let prim_code = function
  | Types.I1 -> 1
  | Types.I2 -> 2
  | Types.I4 -> 3
  | Types.I8 -> 4
  | Types.R4 -> 5
  | Types.R8 -> 6
  | Types.Bool -> 7
  | Types.Char -> 8

let field_code (fd : Classes.field_desc) =
  match fd.Classes.f_type with
  | Types.Prim p -> prim_code p
  | Types.Ref _ -> 0xff

let elem_code = function
  | Types.Eprim p -> prim_code p
  | Types.Eref _ -> 0xff

let serialize profile gc root =
  let env = Heap.env (Gc.heap gc) in
  let heap = Gc.heap gc in
  let types = Buffer.create 256 in
  let type_index : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let n_types = ref 0 in
  let intern_type (mt : Classes.method_table) =
    match Hashtbl.find_opt type_index mt.Classes.c_id with
    | Some i -> i
    | None ->
        let i = !n_types in
        incr n_types;
        Hashtbl.replace type_index mt.Classes.c_id i;
        (match mt.Classes.c_kind with
        | Classes.K_class ->
            u8 types 0;
            str types mt.Classes.c_name;
            u16 types (Array.length mt.Classes.c_fields);
            Array.iter (fun fd -> u8 types (field_code fd)) mt.Classes.c_fields
        | Classes.K_array elem ->
            u8 types 1;
            str types mt.Classes.c_name;
            u8 types (elem_code elem)
        | Classes.K_md_array (elem, rank) ->
            u8 types 2;
            str types mt.Classes.c_name;
            u8 types (elem_code elem);
            u8 types rank);
        i
  in
  (* Handle table (all standard serializers hash visited objects). *)
  let visited : (Heap.addr, int) Hashtbl.t = Hashtbl.create 64 in
  let records : (int * Buffer.t) list ref = ref [] in
  let n_objects = ref 0 in
  let charge_object () =
    incr n_objects;
    Env.count env Simtime.Stats.Key.ser_objects;
    let in_block_mode =
      match profile.block_mode_threshold with
      | Some t -> !n_objects <= t
      | None -> false
    in
    (match profile.block_mode_threshold with
    | Some t when !n_objects = t + 1 -> Env.charge env profile.regime_switch_ns
    | Some _ | None -> ());
    Env.charge env
      (profile.per_obj_ns
      *. if in_block_mode then profile.block_mode_factor else 1.0)
  in
  let charge_bytes n = Env.charge env (profile.per_byte_ns *. float_of_int n) in
  (* Recursive, depth-limited writeObject. Ids are assigned pre-order. *)
  let rec visit depth addr =
    if addr = Heap.null then 0
    else
      match Hashtbl.find_opt visited addr with
      | Some id -> id
      | None ->
          (match profile.recursion_limit with
          | Some limit when depth > limit -> raise Stack_overflow_sim
          | Some _ | None -> ());
          charge_object ();
          let id = !n_objects in
          Hashtbl.replace visited addr id;
          let mt = Gc.method_table_of gc addr in
          let payload = Buffer.create 64 in
          records := (id, payload) :: !records;
          u32 payload (intern_type mt);
          let data = Heap.data_of addr in
          (match mt.Classes.c_kind with
          | Classes.K_class ->
              Array.iter
                (fun (fd : Classes.field_desc) ->
                  Env.charge env profile.reflect_field_ns;
                  let slot = data + fd.Classes.f_offset in
                  match fd.Classes.f_type with
                  | Types.Prim p ->
                      let size = Types.prim_size p in
                      Buffer.add_subbytes payload (Heap.mem heap) slot size;
                      charge_bytes size
                  | Types.Ref _ ->
                      (* Opt-out: every reference is followed. *)
                      let child = Heap.get_ref heap slot in
                      u32 payload (visit (depth + 1) child))
                mt.Classes.c_fields
          | Classes.K_array elem -> (
              let len = Heap.get_i32 heap data in
              u32 payload len;
              match elem with
              | Types.Eprim p ->
                  let size = len * Types.prim_size p in
                  Buffer.add_subbytes payload (Heap.mem heap) (data + 4) size;
                  charge_bytes size
              | Types.Eref _ ->
                  for i = 0 to len - 1 do
                    Env.charge env profile.reflect_field_ns;
                    let child = Heap.get_ref heap (data + 4 + (4 * i)) in
                    u32 payload (visit (depth + 1) child)
                  done)
          | Classes.K_md_array (elem, rank) -> (
              let n = ref 1 in
              for d = 0 to rank - 1 do
                let dim = Heap.get_i32 heap (data + (4 * d)) in
                u32 payload dim;
                n := !n * dim
              done;
              let base = data + (4 * rank) in
              match elem with
              | Types.Eprim p ->
                  let size = !n * Types.prim_size p in
                  Buffer.add_subbytes payload (Heap.mem heap) base size;
                  charge_bytes size
              | Types.Eref _ ->
                  for i = 0 to !n - 1 do
                    Env.charge env profile.reflect_field_ns;
                    let child = Heap.get_ref heap (base + (4 * i)) in
                    u32 payload (visit (depth + 1) child)
                  done));
          id
  in
  let root_id = visit 1 (Om.addr_of gc root) in
  let out = Buffer.create 1024 in
  u32 out 0x4D4F5452;
  u32 out !n_types;
  Buffer.add_buffer out types;
  u32 out !n_objects;
  List.iter
    (fun (_, payload) -> Buffer.add_buffer out payload)
    (List.sort (fun (a, _) (b, _) -> compare a b) !records);
  u32 out root_id;
  Buffer.to_bytes out

(* Decoding shares Motor's wire format, so it is delegated; the hosting
   world's cost preset (whose deser_* figures match the profile) prices the
   work, so no extra charging is needed here. *)
let deserialize _profile gc data = Motor.Serializer.deserialize gc data

let object_count = Motor.Serializer.object_count
