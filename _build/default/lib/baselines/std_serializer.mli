(** Standard runtime serializers: the CLI binary formatter and Java object
    serialization, as behavioural models over this VM's object graphs.

    Differences from Motor's custom mechanism (paper Sections 2.4, 7.5, 8):

    - {e opt-out traversal}: every reference field is followed
      ([Serializable] semantics), not only [Transportable] ones;
    - {e metadata reflection}: field discovery costs reflection time per
      field instead of reading a FieldDesc bit;
    - {e recursive}: traversal recurses per object — Java's serializer
      overflows its stack past ~1024 linked objects (Figure 10 caption);
    - {e atomic representation}: one flat blob that cannot be split or
      offset, so scatter/gather of object arrays cannot be expressed;
    - Java's block-data mode makes small object counts cheap and causes a
      visible cost step when the handle table outgrows it (the "bump"). *)

exception Stack_overflow_sim
(** Raised when the recursion budget is exhausted (mpiJava past 1024
    linked objects). *)

type profile = {
  sp_name : string;
  per_obj_ns : float;
  per_byte_ns : float;
  deser_per_obj_ns : float;
  deser_per_byte_ns : float;
  reflect_field_ns : float;
  recursion_limit : int option;
  block_mode_threshold : int option;
      (** object count below which the cheap block-data regime applies *)
  block_mode_factor : float;  (** per-object cost multiplier inside it *)
  regime_switch_ns : float;  (** one-time cost of leaving block mode *)
}

val clr_sscli : profile
val clr_dotnet : profile
val java : profile

val serialize : profile -> Vm.Gc.t -> Vm.Object_model.obj -> Bytes.t
(** Depth-first, opt-out, recursive. Charges the profile's costs to the
    runtime's clock. Raises {!Stack_overflow_sim} past the recursion
    limit. *)

val deserialize : profile -> Vm.Gc.t -> Bytes.t -> Vm.Object_model.obj
val object_count : Bytes.t -> int
