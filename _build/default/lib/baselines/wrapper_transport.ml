module Comm = Mpi_core.Comm
module Env = Simtime.Env
module Mpi = Mpi_core.Mpi
module Bv = Mpi_core.Buffer_view
module Gc = Vm.Gc
module Om = Vm.Object_model
module World = Motor.World

let env_of ctx = World.env ctx.World.world

(* Native MPI blocks without yielding: the wait pumps progress (so the
   simulation advances) but never GC-polls, so a pending collection waits
   for the call to return — the wrapper pathology of Section 5.1. *)
let native_wait ctx req =
  Mpi.wait_poll ctx.World.proc ~poll:(fun () -> ()) req

let with_pinned ctx obj f =
  let gc = World.gc ctx in
  Gc.pin gc obj;
  let result = f () in
  Gc.unpin gc obj;
  result

let charge_boundary ctx len =
  let env = env_of ctx in
  Env.charge_per_byte env env.Env.cost.binding_ns_per_byte len

let send ~mech ctx ~comm ~dst ~tag obj =
  let gc = World.gc ctx in
  Call_gate.enter mech (env_of ctx) ~args:6;
  Motor.Object_transport.validate gc obj;
  with_pinned ctx obj (fun () ->
      let view =
        Motor.Object_transport.view_of_region ctx
          (Om.payload_region gc obj)
      in
      charge_boundary ctx view.Bv.len;
      ignore (native_wait ctx (Mpi.isend ctx.World.proc ~comm ~dst ~tag view)))

let recv ~mech ctx ~comm ~src ~tag obj =
  let gc = World.gc ctx in
  Call_gate.enter mech (env_of ctx) ~args:6;
  Motor.Object_transport.validate gc obj;
  with_pinned ctx obj (fun () ->
      let view =
        Motor.Object_transport.view_of_region ctx
          (Om.payload_region gc obj)
      in
      charge_boundary ctx view.Bv.len;
      match
        native_wait ctx (Mpi.irecv ctx.World.proc ~comm ~src ~tag view)
      with
      | Some st -> st
      | None -> Mpi_core.Status.empty)

let size_header n =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int n);
  b

let send_serialized ~mech ctx ~comm ~dst ~tag data =
  let env = env_of ctx in
  Call_gate.enter mech env ~args:6;
  charge_boundary ctx (Bytes.length data);
  ignore
    (native_wait ctx
       (Mpi.isend ctx.World.proc ~comm ~dst ~tag
          (Bv.of_bytes (size_header (Bytes.length data)))));
  Call_gate.enter mech env ~args:6;
  ignore
    (native_wait ctx (Mpi.isend ctx.World.proc ~comm ~dst ~tag (Bv.of_bytes data)))

let recv_serialized ~mech ctx ~comm ~src ~tag =
  let env = env_of ctx in
  Call_gate.enter mech env ~args:6;
  let hdr = Bytes.create 8 in
  ignore
    (native_wait ctx (Mpi.irecv ctx.World.proc ~comm ~src ~tag (Bv.of_bytes hdr)));
  let nbytes = Int64.to_int (Bytes.get_int64_le hdr 0) in
  let data = Bytes.create nbytes in
  charge_boundary ctx nbytes;
  Call_gate.enter mech env ~args:6;
  ignore
    (native_wait ctx (Mpi.irecv ctx.World.proc ~comm ~src ~tag (Bv.of_bytes data)));
  data
