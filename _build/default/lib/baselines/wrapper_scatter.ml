module Comm = Mpi_core.Comm
module Mpi = Mpi_core.Mpi
module Gc = Vm.Gc
module Om = Vm.Object_model
module World = Motor.World

let elem_type gc arr =
  match Om.array_elem_type gc arr with
  | Vm.Types.Eref _ as e -> e
  | Vm.Types.Eprim _ ->
      invalid_arg "Wrapper_scatter: need a reference array"

(* Materialize a managed sub-array holding elements [off, off+len) — the
   intermediate allocation the paper's Section 2.4 blames. *)
let sub_array gc arr ~off ~len =
  let sub = Om.alloc_array gc (elem_type gc arr) len in
  for i = 0 to len - 1 do
    let e = Om.get_elem_ref gc arr (off + i) in
    Om.set_elem_ref gc sub i e;
    match e with Some h -> Om.free gc h | None -> ()
  done;
  sub

let scatter_objects ~mech ~profile ctx ~comm ~root input =
  let gc = World.gc ctx in
  let me = Mpi.comm_rank ctx.World.proc comm in
  let n = Comm.size comm in
  if me = root then begin
    let arr =
      match input with
      | Some a -> a
      | None -> invalid_arg "Wrapper_scatter.scatter_objects: root needs data"
    in
    let len = Om.array_length gc arr in
    let base = len / n and extra = len mod n in
    let off = ref 0 in
    let mine = ref (Om.null gc) in
    for r = 0 to n - 1 do
      let count = base + (if r < extra then 1 else 0) in
      (* One fresh sub-array and one atomic serialization per member. *)
      let sub = sub_array gc arr ~off:!off ~len:count in
      off := !off + count;
      let data = Std_serializer.serialize profile gc sub in
      if r = me then begin
        Om.free gc sub;
        mine := Std_serializer.deserialize profile gc data
      end
      else begin
        Om.free gc sub;
        Wrapper_transport.send_serialized ~mech ctx ~comm ~dst:r ~tag:0x5347
          data
      end
    done;
    !mine
  end
  else begin
    let data =
      Wrapper_transport.recv_serialized ~mech ctx ~comm ~src:root ~tag:0x5347
    in
    Std_serializer.deserialize profile gc data
  end

let gather_objects ~mech ~profile ctx ~comm ~root mine =
  let gc = World.gc ctx in
  let me = Mpi.comm_rank ctx.World.proc comm in
  let n = Comm.size comm in
  let data = Std_serializer.serialize profile gc mine in
  if me = root then begin
    (* Receive each member's atomic blob in rank order, rebuilding and
       concatenating. *)
    let parts =
      List.init n (fun r ->
          if r = me then Std_serializer.deserialize profile gc data
          else
            let blob =
              Wrapper_transport.recv_serialized ~mech ctx ~comm ~src:r
                ~tag:0x5348
            in
            Std_serializer.deserialize profile gc blob)
    in
    let total =
      List.fold_left (fun acc o -> acc + Om.array_length gc o) 0 parts
    in
    let combined = Om.alloc_array gc (elem_type gc mine) total in
    let pos = ref 0 in
    List.iter
      (fun part ->
        for i = 0 to Om.array_length gc part - 1 do
          let e = Om.get_elem_ref gc part i in
          Om.set_elem_ref gc combined !pos e;
          (match e with Some h -> Om.free gc h | None -> ());
          incr pos
        done;
        Om.free gc part)
      parts;
    Some combined
  end
  else begin
    Wrapper_transport.send_serialized ~mech ctx ~comm ~dst:root ~tag:0x5348
      data;
    None
  end
