module Env = Simtime.Env
module Key = Simtime.Stats.Key

type mechanism = Pinvoke | Jni

let enter mech env ~args =
  let cost = env.Env.cost in
  let base =
    match mech with
    | Pinvoke ->
        Env.count env Key.pinvokes;
        cost.pinvoke_ns
    | Jni ->
        Env.count env Key.jni_calls;
        cost.jni_ns
  in
  Env.charge env
    (base
    +. (cost.marshal_per_arg_ns *. float_of_int args)
    +. cost.managed_wrapper_ns)

let mechanism_name = function Pinvoke -> "P/Invoke" | Jni -> "JNI"
