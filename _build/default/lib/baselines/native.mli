(** The native baseline: a C++ application using MPICH2 directly.

    No VM, no pinning, no call gateway — plain byte buffers handed
    straight to the device. Runs against {!Simtime.Cost.native_cpp}. *)

module Comm = Mpi_core.Comm

val send :
  Mpi_core.Mpi.proc -> comm:Comm.t -> dst:int -> tag:int -> Bytes.t -> unit

val recv :
  Mpi_core.Mpi.proc -> comm:Comm.t -> src:int -> tag:int -> Bytes.t ->
  Mpi_core.Status.t
