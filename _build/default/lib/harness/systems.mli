(** The systems compared in the paper's Section 8. *)

type t =
  | Native_cpp  (** C++ application on MPICH2 *)
  | Motor_sys  (** Motor: VM-integrated MPI *)
  | Indiana_sscli  (** Indiana C# bindings, SSCLI Free build *)
  | Indiana_sscli_fastchecked  (** footnote-4 variant *)
  | Indiana_dotnet  (** Indiana C# bindings, commercial .NET 1.1 *)
  | Mpijava  (** mpiJava 1.2.5 on the Sun JDK *)

val name : t -> string
val cost : t -> Simtime.Cost.t

val serializer_profile : t -> Baselines.Std_serializer.profile option
(** The standard serializer a wrapper system uses for object transport;
    [None] for Motor (custom mechanism) and native C++ (no objects). *)

val gate : t -> Baselines.Call_gate.mechanism option
(** The managed-to-native mechanism; [None] for Motor (FCall) and native. *)

val fig9_systems : t list
(** Figure 9's five lines, legend order. *)

val fig10_systems : t list
(** Figure 10's four lines, legend order. *)
