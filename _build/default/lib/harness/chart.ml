let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

let log_log ?(width = 72) ?(height = 20) ?(out = Format.std_formatter)
    ~title ~xlabel ~ylabel ~series () =
  let points =
    List.concat_map
      (fun (_, pts) -> List.filter (fun (x, y) -> x > 0.0 && y > 0.0) pts)
      series
  in
  if points = [] then Format.fprintf out "== %s == (no data)@." title
  else begin
    let lx (x, _) = log10 x and ly (_, y) = log10 y in
    let fold f init g = List.fold_left (fun acc p -> f acc (g p)) init points in
    let x0 = fold Float.min infinity lx and x1 = fold Float.max neg_infinity lx in
    let y0 = fold Float.min infinity ly and y1 = fold Float.max neg_infinity ly in
    let xspan = Float.max (x1 -. x0) 1e-9 in
    let yspan = Float.max (y1 -. y0) 1e-9 in
    let grid = Array.make_matrix height width ' ' in
    let plot glyph (x, y) =
      if x > 0.0 && y > 0.0 then begin
        let c =
          int_of_float
            (Float.round ((log10 x -. x0) /. xspan *. float_of_int (width - 1)))
        in
        let r =
          height - 1
          - int_of_float
              (Float.round
                 ((log10 y -. y0) /. yspan *. float_of_int (height - 1)))
        in
        if grid.(r).(c) = ' ' then grid.(r).(c) <- glyph
      end
    in
    List.iteri
      (fun i (_, pts) ->
        List.iter (plot glyphs.(i mod Array.length glyphs)) pts)
      series;
    Format.fprintf out "@.== %s ==@." title;
    Format.fprintf out "%s (log scale)@." ylabel;
    let y_of_row r =
      10.0 ** (y1 -. (float_of_int r /. float_of_int (height - 1) *. yspan))
    in
    Array.iteri
      (fun r row ->
        let label =
          if r mod 5 = 0 || r = height - 1 then
            Printf.sprintf "%8.0f" (y_of_row r)
          else String.make 8 ' '
        in
        Format.fprintf out "%s |%s@." label (String.init width (fun c -> row.(c))))
      grid;
    Format.fprintf out "%s +%s@." (String.make 8 ' ') (String.make width '-');
    Format.fprintf out "%s  %-10.0f%*s%.0f  (%s, log scale)@."
      (String.make 8 ' ') (10.0 ** x0) (width - 20) "" (10.0 ** x1) xlabel;
    Format.fprintf out "  legend:";
    List.iteri
      (fun i (name, _) ->
        Format.fprintf out "  %c=%s" glyphs.(i mod Array.length glyphs) name)
      series;
    Format.fprintf out "@."
  end
