type verdict = { check : string; pass : bool; detail : string }

let v check pass detail = { check; pass; detail }
let all_pass = List.for_all (fun x -> x.pass)

let pp_verdicts ppf vs =
  List.iter
    (fun x ->
      Format.fprintf ppf "%s %-45s %s@." (if x.pass then "PASS" else "FAIL")
        x.check x.detail)
    vs

let series name (all : Experiments.series list) =
  List.find (fun (s : Experiments.series) -> s.Experiments.system = name) all

let time_points (s : Experiments.series) =
  List.filter_map
    (fun (p : Experiments.point) ->
      match p.Experiments.result with
      | Workloads.Time_us t -> Some (p.Experiments.x, t)
      | Workloads.Crashed _ -> None)
    s.Experiments.points

let time_at s x = List.assoc x (time_points s)

(* ------------------------------------------------------------------ *)

let fig9_checks all =
  let cpp = series "C++" all
  and motor = series "Motor" all
  and ind = series "Indiana SSCLI" all
  and ind_net = series "Indiana .NET" all
  and java = series "Java" all in
  let xs = List.map fst (time_points cpp) in
  let holds_everywhere what f =
    let failures =
      List.filter_map (fun x -> if f x then None else Some x) xs
    in
    v what (failures = [])
      (if failures = [] then "at every size"
       else
         "violated at sizes "
         ^ String.concat "," (List.map string_of_int failures))
  in
  let pct x =
    let m = time_at motor x and i = time_at ind x in
    100.0 *. (i -. m) /. i
  in
  let pcts = List.map pct xs in
  let avg l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  let peak = List.fold_left Float.max neg_infinity pcts in
  let mean = avg pcts in
  let large = avg (List.filter_map (fun x -> if x > 65_536 then Some (pct x) else None) xs) in
  let grows s =
    let pts = time_points s in
    List.assoc 262_144 pts > 10.0 *. List.assoc 4 pts
  in
  [
    holds_everywhere "C++ is fastest" (fun x ->
        let c = time_at cpp x in
        c < time_at motor x && c < time_at ind x && c < time_at java x);
    holds_everywhere "Motor is second (beats both wrappers)" (fun x ->
        let m = time_at motor x in
        m < time_at ind x && m < time_at ind_net x && m < time_at java x);
    holds_everywhere "Java is slowest" (fun x ->
        let j = time_at java x in
        j > time_at ind x && j > time_at ind_net x);
    holds_everywhere "Indiana .NET <= Indiana SSCLI" (fun x ->
        time_at ind_net x <= time_at ind x +. 1e-9);
    v "peak Motor advantage near 16%"
      (peak >= 10.0 && peak <= 25.0)
      (Printf.sprintf "measured %.1f%% (paper 16%%)" peak);
    v "average Motor advantage near 8%"
      (mean >= 4.0 && mean <= 14.0)
      (Printf.sprintf "measured %.1f%% (paper 8%%)" mean);
    v "large-message advantage near 3%"
      (large >= 0.5 && large <= 8.0)
      (Printf.sprintf "measured %.1f%% (paper 3%%)" large);
    v "times grow with message size"
      (List.for_all grows [ cpp; motor; ind; ind_net; java ])
      "t(256KiB) > 10 x t(4B) for every system";
  ]

(* ------------------------------------------------------------------ *)

let fig10_checks all =
  let motor = series "Motor" all
  and java = series "Java" all
  and ind_net = series "Indiana .NET" all
  and ind = series "Indiana SSCLI" all in
  let xs =
    List.map (fun (p : Experiments.point) -> p.Experiments.x) motor.points
  in
  let motor_fastest_at x =
    let m = time_at motor x in
    let beats s =
      match List.assoc_opt x (time_points s) with
      | Some t -> m < t
      | None -> true (* a crashed competitor does not win *)
    in
    beats java && beats ind_net && beats ind
  in
  let small = List.filter (fun x -> x < 2048) xs in
  let crashed_at x =
    match
      List.find_opt
        (fun (p : Experiments.point) -> p.Experiments.x = x)
        java.points
    with
    | Some { result = Workloads.Crashed _; _ } -> true
    | Some { result = Workloads.Time_us _; _ } | None -> false
  in
  let java_pts = time_points java in
  let bump =
    (* Leaving block-data mode: the cost step from 256 to 512 objects is
       sharply larger than the preceding steps. *)
    match
      ( List.assoc_opt 128 java_pts,
        List.assoc_opt 256 java_pts,
        List.assoc_opt 512 java_pts )
    with
    | Some t128, Some t256, Some t512 ->
        let before = t256 /. t128 and at = t512 /. t256 in
        (at > 1.4 *. before, Printf.sprintf "step x%.2f vs x%.2f" at before)
    | _ -> (false, "missing points")
  in
  let dotnet_faster =
    List.for_all (fun x -> time_at ind_net x <= time_at ind x +. 1e-9) xs
  in
  [
    v "Motor fastest below 2048 objects"
      (List.for_all motor_fastest_at small)
      (Printf.sprintf "checked %d sizes" (List.length small));
    v "Motor loses the lead at 8192 objects"
      (match List.assoc_opt 8192 (time_points motor) with
       | Some m -> (
           match List.assoc_opt 8192 (time_points ind) with
           | Some i -> m > i
           | None -> false)
       | None -> false)
      "quadratic visited list takes over";
    v "mpiJava survives up to 1024 objects"
      (List.for_all (fun x -> not (crashed_at x)) (List.filter (fun x -> x <= 1024) xs))
      "no crash at or below 1024";
    v "mpiJava crashes past 1024 objects"
      (List.for_all crashed_at (List.filter (fun x -> x > 1024) xs))
      "stack overflow in recursive serialization";
    v "mpiJava shows the block-mode bump" (fst bump) (snd bump);
    v "Indiana .NET beats Indiana SSCLI" dotnet_faster "every size";
  ]
