module Cost = Simtime.Cost

type t =
  | Native_cpp
  | Motor_sys
  | Indiana_sscli
  | Indiana_sscli_fastchecked
  | Indiana_dotnet
  | Mpijava

let name = function
  | Native_cpp -> "C++"
  | Motor_sys -> "Motor"
  | Indiana_sscli -> "Indiana SSCLI"
  | Indiana_sscli_fastchecked -> "Indiana SSCLI (fastchecked)"
  | Indiana_dotnet -> "Indiana .NET"
  | Mpijava -> "Java"

let cost = function
  | Native_cpp -> Cost.native_cpp
  | Motor_sys -> Cost.motor
  | Indiana_sscli -> Cost.indiana_sscli
  | Indiana_sscli_fastchecked -> Cost.indiana_sscli_fastchecked
  | Indiana_dotnet -> Cost.indiana_dotnet
  | Mpijava -> Cost.mpijava

let serializer_profile = function
  | Native_cpp | Motor_sys -> None
  | Indiana_sscli | Indiana_sscli_fastchecked ->
      Some Baselines.Std_serializer.clr_sscli
  | Indiana_dotnet -> Some Baselines.Std_serializer.clr_dotnet
  | Mpijava -> Some Baselines.Std_serializer.java

let gate = function
  | Native_cpp | Motor_sys -> None
  | Indiana_sscli | Indiana_sscli_fastchecked | Indiana_dotnet ->
      Some Baselines.Call_gate.Pinvoke
  | Mpijava -> Some Baselines.Call_gate.Jni

let fig9_systems =
  [ Mpijava; Indiana_sscli; Indiana_dotnet; Motor_sys; Native_cpp ]

let fig10_systems = [ Motor_sys; Mpijava; Indiana_dotnet; Indiana_sscli ]
