lib/harness/experiments.ml: Array Baselines Bytes Fiber Float List Motor Mpi_core Simtime Systems Vm Workloads
