lib/harness/systems.ml: Baselines Simtime
