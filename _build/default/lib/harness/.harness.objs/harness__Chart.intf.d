lib/harness/chart.mli: Format
