lib/harness/shapes.ml: Experiments Float Format List Printf String Workloads
