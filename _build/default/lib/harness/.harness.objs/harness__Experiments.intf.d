lib/harness/experiments.mli: Workloads
