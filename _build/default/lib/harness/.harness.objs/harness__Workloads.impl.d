lib/harness/workloads.ml: Baselines Bytes Fiber List Motor Mpi_core Option Simtime Systems Vm
