lib/harness/chart.ml: Array Float Format List Printf String
