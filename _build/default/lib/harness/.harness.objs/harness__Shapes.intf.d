lib/harness/shapes.mli: Experiments Format
