lib/harness/workloads.mli: Motor Simtime Systems Vm
