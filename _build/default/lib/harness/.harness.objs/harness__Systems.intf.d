lib/harness/systems.mli: Baselines Simtime
