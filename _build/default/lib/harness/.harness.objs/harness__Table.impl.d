lib/harness/table.ml: Array Buffer Float Format List Printf String
