(** Shape assertions: the qualitative claims of the paper's evaluation
    that the reproduction must preserve (who wins, by roughly how much,
    where the crossovers fall). Used by the test suite and reported in
    EXPERIMENTS.md. *)

type verdict = { check : string; pass : bool; detail : string }

val fig9_checks : Experiments.series list -> verdict list
(** - ordering C++ < Motor < Indiana(SSCLI) and Java slowest, every size
    - Indiana .NET never slower than Indiana SSCLI
    - Motor-vs-Indiana-SSCLI peak / average / large-size improvements near
      the paper's 16 / 8 / 3 per cent
    - times grow with message size *)

val fig10_checks : Experiments.series list -> verdict list
(** - Motor fastest below 2048 total objects
    - Motor loses the lead by 8192 (quadratic visited list)
    - mpiJava crashes past 1024 objects and not before
    - mpiJava shows a cost step (the "bump") leaving block-data mode
    - Indiana .NET beats Indiana SSCLI throughout *)

val all_pass : verdict list -> bool
val pp_verdicts : Format.formatter -> verdict list -> unit
