(** ASCII charts: log-log line plots of experiment series, echoing the
    paper's Figures 9 and 10 in the terminal. *)

val log_log :
  ?width:int ->
  ?height:int ->
  ?out:Format.formatter ->
  title:string ->
  xlabel:string ->
  ylabel:string ->
  series:(string * (float * float) list) list ->
  unit ->
  unit
(** Each series is a name plus (x, y) points; non-positive values are
    skipped (log scale). Series are drawn with distinct glyphs, legend
    below the plot. Default canvas 72x20. *)
