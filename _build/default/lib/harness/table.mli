(** ASCII and CSV rendering for experiment results. *)

type cell = Num of float | Text of string | Missing

val print_table :
  ?out:Format.formatter ->
  title:string ->
  headers:string list ->
  rows:(string * cell list) list ->
  unit ->
  unit
(** Aligned columns; numeric cells are printed with one decimal. *)

val csv_string : headers:string list -> rows:(string * cell list) list -> string

val write_csv :
  path:string -> headers:string list -> rows:(string * cell list) list -> unit
