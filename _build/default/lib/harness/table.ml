type cell = Num of float | Text of string | Missing

let cell_string = function
  | Num v ->
      if Float.is_nan v then "nan"
      else if Float.abs v >= 1000.0 then Printf.sprintf "%.0f" v
      else Printf.sprintf "%.1f" v
  | Text s -> s
  | Missing -> "-"

let print_table ?(out = Format.std_formatter) ~title ~headers ~rows () =
  let all_rows =
    ("", headers) :: List.map (fun (l, cs) -> (l, List.map cell_string cs)) rows
  in
  let n_cols =
    List.fold_left (fun acc (_, cs) -> max acc (List.length cs)) 0 all_rows
  in
  let widths = Array.make (n_cols + 1) 0 in
  List.iter
    (fun (label, cs) ->
      widths.(0) <- max widths.(0) (String.length label);
      List.iteri
        (fun i c -> widths.(i + 1) <- max widths.(i + 1) (String.length c))
        cs)
    all_rows;
  Format.fprintf out "@.== %s ==@." title;
  let print_row (label, cs) =
    Format.fprintf out "%-*s" widths.(0) label;
    List.iteri
      (fun i c -> Format.fprintf out "  %*s" widths.(i + 1) c)
      cs;
    Format.fprintf out "@."
  in
  print_row (List.hd all_rows);
  let rule =
    String.make
      (Array.fold_left ( + ) 0 widths + (2 * n_cols))
      '-'
  in
  Format.fprintf out "%s@." rule;
  List.iter print_row (List.tl all_rows)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv_string ~headers ~rows =
  let b = Buffer.create 256 in
  Buffer.add_string b (String.concat "," (List.map csv_escape ("" :: headers)));
  Buffer.add_char b '\n';
  List.iter
    (fun (label, cs) ->
      let cells =
        label
        :: List.map
             (function
               | Num v -> Printf.sprintf "%.6g" v
               | Text s -> s
               | Missing -> "")
             cs
      in
      Buffer.add_string b (String.concat "," (List.map csv_escape cells));
      Buffer.add_char b '\n')
    rows;
  Buffer.contents b

let write_csv ~path ~headers ~rows =
  let oc = open_out path in
  output_string oc (csv_string ~headers ~rows);
  close_out oc
