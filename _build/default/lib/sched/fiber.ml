open Effect
open Effect.Deep

type _ Effect.t +=
  | Yield : unit Effect.t
  | Wait : ((unit -> bool) * string) -> unit Effect.t
  | Spawn : (string * (unit -> unit)) -> unit Effect.t

exception Deadlock of string list

type blocked = {
  pred : unit -> bool;
  wlabel : string;
  resume : unit -> unit;
}

type sched = {
  runq : (unit -> unit) Queue.t;
  mutable blocked : blocked list;
  mutable activity : int;
}

(* Stack of active schedulers: runs may nest. *)
let stack : sched list ref = ref []

let in_scheduler () = !stack <> []

let note_activity () =
  match !stack with s :: _ -> s.activity <- s.activity + 1 | [] -> ()

let yield () = perform Yield
let wait_until ?(label = "wait") pred = perform (Wait (pred, label))
let spawn label f = perform (Spawn (label, f))

let rec exec sched label body =
  match_with body ()
    {
      retc = (fun () -> ());
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, _) continuation) ->
                  Queue.push (fun () -> continue k ()) sched.runq)
          | Wait (pred, wlabel) ->
              Some
                (fun (k : (a, _) continuation) ->
                  if pred () then continue k ()
                  else
                    let b =
                      {
                        pred;
                        wlabel = label ^ "/" ^ wlabel;
                        resume = (fun () -> continue k ());
                      }
                    in
                    sched.blocked <- b :: sched.blocked)
          | Spawn (l, f) ->
              Some
                (fun (k : (a, _) continuation) ->
                  Queue.push (fun () -> exec sched l f) sched.runq;
                  continue k ())
          | _ -> None);
    }

(* Main loop: drain the run queue; when empty, re-test blocked predicates.
   Deadlock is declared only when a full scan wakes nobody and no subsystem
   reported activity, so multi-step progress (e.g. one packet per poll) is
   never mistaken for a hang. *)
let run fibers =
  let sched = { runq = Queue.create (); blocked = []; activity = 0 } in
  List.iter
    (fun (label, f) -> Queue.push (fun () -> exec sched label f) sched.runq)
    fibers;
  stack := sched :: !stack;
  let finish () = stack := List.tl !stack in
  let rec loop () =
    match Queue.take_opt sched.runq with
    | Some thunk ->
        thunk ();
        loop ()
    | None ->
        if sched.blocked <> [] then begin
          let activity_before = sched.activity in
          let woken, still =
            List.partition (fun b -> b.pred ()) (List.rev sched.blocked)
          in
          sched.blocked <- List.rev still;
          match woken with
          | [] ->
              if sched.activity = activity_before then
                raise (Deadlock (List.map (fun b -> b.wlabel) still))
              else loop ()
          | _ ->
              List.iter (fun b -> Queue.push b.resume sched.runq) woken;
              loop ()
        end
  in
  match loop () with
  | () -> finish ()
  | exception e ->
      finish ();
      raise e
