(** Cooperative fibers: the simulation's stand-in for OS processes.

    Each MPI rank runs as a fiber with its own managed heap; the scheduler is
    a deterministic round-robin, so every run is reproducible. Blocking MPI
    operations suspend with {!wait_until}; the predicate typically pumps the
    progress engine, mirroring the paper's polling-wait (Section 7.4).

    GC interactions are preserved exactly: a rank's garbage collector can run
    only while that rank's own fiber executes, so remote ranks never move
    local objects — the same invariant the paper gets from per-process
    address spaces. *)

exception Deadlock of string list
(** Raised by {!run} when every live fiber is blocked and no predicate can
    make progress. Carries the labels of the blocked waits. *)

val run : (string * (unit -> unit)) list -> unit
(** [run fibers] executes the labelled fibers round-robin until all complete.
    An exception escaping any fiber aborts the whole run and is re-raised.
    Runs may nest (a fiber may start an inner scheduler). *)

val yield : unit -> unit
(** Suspend and reschedule at the back of the run queue. Must be called from
    within {!run}. *)

val wait_until : ?label:string -> (unit -> bool) -> unit
(** [wait_until pred] suspends until [pred ()] is true. [pred] runs in
    scheduler context: it must not yield or wait, but it may perform plain
    side effects (e.g. pumping a progress engine). Predicates that move data
    without yet becoming true must call {!note_activity} (the channels do
    this) so the deadlock detector is not fooled by multi-step progress. *)

val spawn : string -> (unit -> unit) -> unit
(** Add a fiber to the running scheduler (used by dynamic process
    management). Must be called from within {!run}. *)

val note_activity : unit -> unit
(** Record that useful work happened outside of fiber resumption; resets the
    deadlock detector. Safe to call when no scheduler is running. *)

val in_scheduler : unit -> bool
(** True when called from inside {!run}. *)
