bin/figures.ml: Arg Buffer Chart Cmd Cmdliner Experiments Format Harness List Printf Shapes Stdlib String Table Term Workloads
