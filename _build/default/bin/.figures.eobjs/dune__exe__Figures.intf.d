bin/figures.mli:
