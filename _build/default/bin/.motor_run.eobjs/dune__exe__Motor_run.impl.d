bin/motor_run.ml: Arg Cmd Cmdliner Format In_channel List Motor Mpi_core Printf Simtime String Term Vm
