bin/motor_run.mli:
