(* mpiexec for managed MIL programs: run a .mil file on N simulated Motor
   ranks and print each rank's console output plus run statistics. *)

open Cmdliner

let run file n entry show_stats trace disasm =
  let src = In_channel.with_open_text file In_channel.input_all in
  let world = Motor.World.create ~n () in
  if disasm then begin
    let ctx = Motor.World.rank_ctx world 0 in
    let interp = Motor.Mil_bindings.load ctx ~entry src in
    Format.printf "%a" Vm.Il.pp_program (Vm.Interp.program interp);
    exit 0
  end;
  let tracer =
    if trace then Some (Mpi_core.Trace.enable (Motor.World.env world))
    else None
  in
  (try
     Motor.World.run world (fun ctx ->
         let interp = Motor.Mil_bindings.load ctx ~entry src in
         ignore (Vm.Interp.run_entry interp []))
   with
  | Vm.Assembler.Parse_error msg | Vm.Verifier.Verify_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2
  | Vm.Interp.Runtime_error msg ->
      Printf.eprintf "managed fault: %s\n" msg;
      exit 3);
  for rank = 0 to n - 1 do
    let ctx = Motor.World.rank_ctx world rank in
    let out = Vm.Runtime.output ctx.Motor.World.rt in
    if out <> "" then
      String.split_on_char '\n' out
      |> List.iter (fun line ->
             if line <> "" then Printf.printf "[rank %d] %s\n" rank line)
  done;
  let env = Motor.World.env world in
  Printf.printf "virtual time: %.1f us\n" (Simtime.Env.now_us env);
  if show_stats then
    Format.printf "%a@." Simtime.Stats.pp env.Simtime.Env.stats;
  match tracer with
  | Some t ->
      Format.printf "-- trace --@.%a" Mpi_core.Trace.pp_timeline t
  | None -> ()

let file =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"PROGRAM.mil" ~doc:"MIL assembly file.")

let n =
  Arg.(value & opt int 2 & info [ "n"; "ranks" ] ~doc:"Number of ranks.")

let entry =
  Arg.(value & opt string "main" & info [ "entry" ] ~doc:"Entry method.")

let stats =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print runtime counters.")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ] ~doc:"Record and print a device-level event timeline.")

let disasm =
  Arg.(
    value & flag
    & info [ "disasm" ]
        ~doc:"Disassemble the verified program instead of running it.")

let () =
  let info =
    Cmd.info "motor_run" ~doc:"Run a managed MIL program on Motor ranks."
  in
  exit (Cmd.eval (Cmd.v info Term.(const run $ file $ n $ entry $ stats $ trace $ disasm)))
