(* Topology-aware hierarchical collectives and sparse communicator
   state: the two-level algorithms against the flat oracles, the derived
   shard/leader communicators, O(1) membership at scale, and the
   analytic two-level shape (rounds and per-tier message counts) at
   4096 ranks. *)

module Mpi = Mpi_core.Mpi
module Comm = Mpi_core.Comm
module Group = Mpi_core.Group
module Coll = Mpi_core.Collectives
module Sched = Mpi_core.Coll_sched
module Bv = Mpi_core.Buffer_view
module Topology = Simtime.Topology
module Key = Simtime.Stats.Key

let stats w = (Mpi.env w).Simtime.Env.stats
let payload n seed = Bytes.init n (fun i -> Char.chr ((i * 7 + seed) land 0xff))

let log2i n =
  let r = ref 0 and v = ref n in
  while !v > 1 do
    incr r;
    v := !v lsr 1
  done;
  !r

(* ------------------------------------------------------------------ *)
(* The fabric model                                                    *)
(* ------------------------------------------------------------------ *)

let test_topology_model () =
  let t = Topology.make ~nodes:4 ~cores:3 in
  Alcotest.(check int) "size" 12 (Topology.size t);
  Alcotest.(check bool) "multi-node" true (Topology.multi_node t);
  Alcotest.(check int) "node of 7" 2 (Topology.node_of t 7);
  Alcotest.(check bool) "same node" true (Topology.same_node t 3 5);
  Alcotest.(check bool) "node boundary" false (Topology.same_node t 2 3);
  Alcotest.(check int) "leader of 8" 6 (Topology.leader_of t 8);
  Alcotest.(check bool) "9 is leader" true (Topology.is_leader t 9);
  Alcotest.(check bool) "10 is not" false (Topology.is_leader t 10);
  (* Ranks beyond the fabric (dynamic spawns) clamp to the last node. *)
  Alcotest.(check int) "overflow clamps" 3 (Topology.node_of t 40);
  let s = Topology.single ~n:5 in
  Alcotest.(check bool) "single is flat" false (Topology.multi_node s);
  Alcotest.(check bool) "all same node" true (Topology.same_node s 0 4)

(* ------------------------------------------------------------------ *)
(* Sparse membership: no O(world) arrays for identity communicators    *)
(* ------------------------------------------------------------------ *)

let test_sparse_world_64k () =
  (* Constructing a 64k-rank world must not materialize membership
     arrays: the world communicator, its group, and the derived
     shard/leader communicators are all O(1) descriptors. *)
  let n = 65536 in
  let w =
    Mpi.create_world ~topology:(Topology.make ~nodes:1024 ~cores:64) ~n ()
  in
  let comm = Mpi.comm_world w in
  Alcotest.(check bool) "world is a range" true (Comm.is_range comm);
  Alcotest.(check int) "world size" n (Comm.size comm);
  Alcotest.(check (option (triple int int int)))
    "contiguous descriptor"
    (Some (0, 1, n))
    (Comm.range_info comm);
  Alcotest.(check bool) "group stays a range" true
    (Group.is_range (Group.of_comm comm));
  (* Both rank mappings are O(1) lookups on the descriptor. *)
  Alcotest.(check int) "world_rank_of" 65535 (Comm.world_rank_of comm 65535);
  Alcotest.(check (option int)) "comm_rank_of" (Some 40000)
    (Comm.comm_rank_of comm 40000)

let test_hier_comms () =
  ignore
    (Mpi.run ~n:12 ~topology:(Topology.make ~nodes:4 ~cores:3) (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         let me = Mpi.rank p in
         let node = me / 3 in
         let shard = Mpi.shard_comm p comm in
         Alcotest.(check int) "shard size" 3 (Comm.size shard);
         Alcotest.(check (option (triple int int int)))
           "shard is my node's contiguous slice"
           (Some (node * 3, 1, 3))
           (Comm.range_info shard);
         Alcotest.(check (option int))
           "my shard rank"
           (Some (me mod 3))
           (Comm.comm_rank_of shard me);
         let leaders = Mpi.leader_comm p comm in
         Alcotest.(check (option (triple int int int)))
           "leaders are a strided slice"
           (Some (0, 3, 4))
           (Comm.range_info leaders);
         Alcotest.(check bool)
           "leader iff first on node"
           (me mod 3 = 0)
           (Mpi.is_shard_leader p comm)))

(* ------------------------------------------------------------------ *)
(* Two-level collectives vs the flat oracles                           *)
(* ------------------------------------------------------------------ *)

let run_hier body =
  ignore (Mpi.run ~n:16 ~topology:(Topology.make ~nodes:4 ~cores:4) body)

let test_hier_allreduce_matches_oracle () =
  run_hier (fun p ->
      let comm = Mpi.comm_world (Mpi.world_of p) in
      let me = Mpi.rank p in
      Alcotest.(check bool) "hier applies" true (Coll.hier_applicable p comm);
      let mine = Bytes.create 16 in
      for j = 0 to 3 do
        Bytes.set_int32_le mine (4 * j) (Int32.of_int ((me * 131) + j))
      done;
      let hier = Coll.allreduce ~algo:`Hier p comm ~op:Coll.sum_i32 mine in
      let flat = Coll.allreduce ~algo:`Linear p comm ~op:Coll.sum_i32 mine in
      Alcotest.(check bytes)
        (Printf.sprintf "rank %d converged" me)
        flat hier)

(* Affine maps x -> a*x + b under composition: associative but not
   commutative, so this catches any fold-order violation across the
   shard-reduce / leader-allreduce / shard-bcast phases. *)
let affine_op acc x =
  let a1 = Bytes.get_int32_le acc 0 and b1 = Bytes.get_int32_le acc 4 in
  let a2 = Bytes.get_int32_le x 0 and b2 = Bytes.get_int32_le x 4 in
  Bytes.set_int32_le acc 0 (Int32.mul a1 a2);
  Bytes.set_int32_le acc 4 (Int32.add (Int32.mul a1 b2) b1)

let affine_of me =
  let b = Bytes.create 8 in
  Bytes.set_int32_le b 0 (Int32.of_int ((2 * me) + 3));
  Bytes.set_int32_le b 4 (Int32.of_int (me - 5));
  b

let test_hier_allreduce_non_commutative () =
  let n = 16 in
  let expected =
    let acc = Bytes.copy (affine_of 0) in
    for r = 1 to n - 1 do
      affine_op acc (affine_of r)
    done;
    acc
  in
  run_hier (fun p ->
      let comm = Mpi.comm_world (Mpi.world_of p) in
      let got =
        Coll.allreduce ~algo:`Hier ~commutative:false p comm ~op:affine_op
          (affine_of (Mpi.rank p))
      in
      Alcotest.(check bytes)
        (Printf.sprintf "rank %d rank-order fold" (Mpi.rank p))
        expected got)

let test_hier_bcast () =
  run_hier (fun p ->
      let comm = Mpi.comm_world (Mpi.world_of p) in
      let me = Mpi.rank p in
      (* Root 5 is a non-leader on node 1: exercises the relocation hop. *)
      let buf = if me = 5 then Bytes.copy (payload 96 5) else Bytes.create 96 in
      Coll.bcast ~algo:`Hier p comm ~root:5 (Bv.of_bytes buf);
      Alcotest.(check bytes)
        (Printf.sprintf "rank %d got root payload" me)
        (payload 96 5) buf)

let test_hier_allgather () =
  run_hier (fun p ->
      let comm = Mpi.comm_world (Mpi.world_of p) in
      let me = Mpi.rank p in
      let blocks = Coll.allgather ~algo:`Hier p comm ~send:(payload 8 me) in
      Alcotest.(check int) "one block per member" 16 (Array.length blocks);
      Array.iteri
        (fun r b ->
          Alcotest.(check bytes)
            (Printf.sprintf "rank %d block %d" me r)
            (payload 8 r) b)
        blocks)

let test_hier_uneven_subcomm () =
  (* A contiguous sub-communicator that straddles node boundaries with
     unequal shards (ranks 2..10 on 4 nodes of 3: shards of 1, 3, 3, 2).
     Allreduce / bcast / barrier work; the allgather's equal-shard layout
     does not apply, so forcing it must be rejected. *)
  ignore
    (Mpi.run ~n:12 ~topology:(Topology.make ~nodes:4 ~cores:3) (fun p ->
         let world = Mpi.comm_world (Mpi.world_of p) in
         let me = Mpi.rank p in
         let inside = me >= 2 && me <= 10 in
         let sub =
           Mpi.comm_split p world ~color:(if inside then 0 else 1) ~key:me
         in
         if inside then begin
           Alcotest.(check bool)
             "contiguous split is a range" true (Comm.is_range sub);
           Alcotest.(check bool)
             "hier applies" true (Coll.hier_applicable p sub);
           Alcotest.(check bool)
             "hier allgather does not" false
             (Coll.hier_allgather_applicable p sub);
           let v = Bytes.create 4 in
           Bytes.set_int32_le v 0 (Int32.of_int (1 lsl me));
           let acc = Coll.allreduce ~algo:`Hier p sub ~op:Coll.sum_i32 v in
           Alcotest.(check int)
             (Printf.sprintf "rank %d bitmask" me)
             0b11111111100
             (Int32.to_int (Bytes.get_int32_le acc 0));
           let buf =
             if me = 4 then Bytes.copy (payload 32 4) else Bytes.create 32
           in
           Coll.bcast ~algo:`Hier p sub ~root:2 (Bv.of_bytes buf);
           (* Root is sub rank 2 = world rank 4. *)
           Alcotest.(check bytes)
             (Printf.sprintf "rank %d bcast" me)
             (payload 32 4) buf;
           Coll.barrier ~algo:`Hier p sub;
           Alcotest.check_raises "forced hier allgather rejected"
             (Invalid_argument
                "Collectives.allgather: `Hier needs a multi-node topology \
                 and a node-aligned contiguous communicator")
             (fun () -> ignore (Coll.allgather ~algo:`Hier p sub ~send:v))
         end))

let test_hier_barrier_overlap () =
  (* A hier barrier and a flat collective in flight on the same
     communicator must not cross-match: disjoint tag ranges. *)
  run_hier (fun p ->
      let comm = Mpi.comm_world (Mpi.world_of p) in
      let me = Mpi.rank p in
      let breq = Coll.ibarrier ~algo:`Hier p comm in
      let areq, acc =
        Coll.iallreduce ~algo:`Rd p comm ~op:Coll.sum_i32
          (let b = Bytes.create 4 in
           Bytes.set_int32_le b 0 (Int32.of_int me);
           b)
      in
      ignore (Mpi.wait p breq);
      ignore (Mpi.wait p areq);
      Alcotest.(check int)
        "sum unharmed" 120
        (Int32.to_int (Bytes.get_int32_le acc 0)))

(* ------------------------------------------------------------------ *)
(* The analytic two-level model at scale                               *)
(* ------------------------------------------------------------------ *)

(* 4096 ranks as 64 nodes x 64 cores, one 8-byte Auto allreduce. Auto
   must choose the two-level algorithm, whose shape is exact:
   - intra-node: a binomial reduce and a binomial bcast per shard,
     2 * S * (s - 1) messages;
   - inter-node: recursive doubling across the 64 leaders (8 bytes is
     far below the Rabenseifner threshold), pof2 * log2 pof2 messages
     (plus 2 * rem for a non-power-of-two leader count — zero here);
   - the leader's schedule runs 2 log2 s + 2 log2 L + 1 rounds (recv +
     fold per reduce level, exchange + fold per RD level, one final
     bcast fan-out round). *)
let test_analytic_shape_4k () =
  let nodes = 64 and cores = 64 in
  let n = nodes * cores in
  let len = 8 in
  let rounds_at_0 = ref None in
  let w =
    Mpi.run ~n ~topology:(Topology.make ~nodes ~cores) (fun p ->
        let comm = Mpi.comm_world (Mpi.world_of p) in
        let me = Mpi.rank p in
        let mine = Bytes.create len in
        Bytes.set_int64_le mine 0 (Int64.of_int (me + 1));
        let req, acc = Coll.iallreduce p comm ~op:Coll.sum_i64 mine in
        (* Read before the wait yields: the shape registry is bounded
           and thousands of schedules start during this run. *)
        if me = 0 then rounds_at_0 := Sched.info req;
        ignore (Mpi.wait p req);
        let expect = n * (n + 1) / 2 in
        if Int64.to_int (Bytes.get_int64_le acc 0) <> expect then
          Alcotest.failf "rank %d: bad sum" me)
  in
  let st = stats w in
  let get k = Simtime.Stats.get st k in
  let intra_expected = 2 * nodes * (cores - 1) in
  let inter_expected = nodes * log2i nodes in
  Alcotest.(check int) "intra-node messages" intra_expected
    (get Key.msgs_intra_node);
  Alcotest.(check int) "inter-node messages" inter_expected
    (get Key.msgs_inter_node);
  (* Eager wire bytes: payload plus the packet header, per message. *)
  let wire = len + Mpi_core.Packet.header_bytes in
  Alcotest.(check int) "intra-node bytes" (wire * intra_expected)
    (get Key.bytes_intra_node);
  Alcotest.(check int) "inter-node bytes" (wire * inter_expected)
    (get Key.bytes_inter_node);
  let rounds_expected = (2 * log2i cores) + (2 * log2i nodes) + 1 in
  match !rounds_at_0 with
  | None -> Alcotest.fail "rank 0 schedule shape evicted"
  | Some (rounds, _steps) ->
      Alcotest.(check int) "leader rounds" rounds_expected rounds

let () =
  Alcotest.run "hier"
    [
      ( "topology",
        [
          Alcotest.test_case "fabric model" `Quick test_topology_model;
          Alcotest.test_case "64k world is O(1) state" `Quick
            test_sparse_world_64k;
          Alcotest.test_case "shard and leader comms" `Quick test_hier_comms;
        ] );
      ( "collectives",
        [
          Alcotest.test_case "allreduce matches oracle" `Quick
            test_hier_allreduce_matches_oracle;
          Alcotest.test_case "non-commutative fold order" `Quick
            test_hier_allreduce_non_commutative;
          Alcotest.test_case "bcast from non-leader root" `Quick
            test_hier_bcast;
          Alcotest.test_case "allgather aligned" `Quick test_hier_allgather;
          Alcotest.test_case "uneven sub-communicator" `Quick
            test_hier_uneven_subcomm;
          Alcotest.test_case "overlaps a flat collective" `Quick
            test_hier_barrier_overlap;
        ] );
      ( "scale",
        [
          Alcotest.test_case "analytic shape at 4096 ranks" `Quick
            test_analytic_shape_4k;
        ] );
    ]
