(* The algorithm-selection layer of lib/mpi/collectives.ml: every
   algorithm against its linear/reference oracle across power-of-two and
   non-power-of-two communicators, rank-order preservation for
   non-commutative operators, the tag-table uniqueness check, the
   trace-verified O(log n) round count, and the hot-path data structures
   the collectives lean on (matching queues, go-back-N window, buffer
   pool). *)

module Mpi = Mpi_core.Mpi
module Comm = Mpi_core.Comm
module Coll = Mpi_core.Collectives
module Bv = Mpi_core.Buffer_view
module Env = Simtime.Env

let payload seed n = Bytes.init n (fun i -> Char.chr ((i * 7 + seed) land 0xff))

(* Every collective — blocking shim or in-flight schedule — must leave
   the world quiescent: no posted receives never matched, no unexpected
   messages never claimed, no outstanding requests, no half-done
   rendezvous. Asserted after every oracle run below. *)
let assert_quiescent label w =
  match Mpi.quiescence_report w with
  | [] -> ()
  | issues ->
      Alcotest.failf "%s left debris: %s" label
        (String.concat "; "
           (List.map (fun (r, s) -> Printf.sprintf "rank %d: %s" r s) issues))

let run_quiescent ?fault ~n label body =
  assert_quiescent label (Mpi.run ?fault ~n body)

(* ------------------------------------------------------------------ *)
(* Tag table                                                           *)
(* ------------------------------------------------------------------ *)

let test_tag_table_disjoint () =
  (match Coll.tag_overlap () with
  | None -> ()
  | Some (a, b) -> Alcotest.failf "tag ranges overlap: %s and %s" a b);
  let names = List.map (fun (name, _, _) -> name) Coll.tag_table in
  Alcotest.(check int)
    "names unique"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  let bases = List.map (fun (_, base, _) -> base) Coll.tag_table in
  Alcotest.(check int)
    "bases unique"
    (List.length bases)
    (List.length (List.sort_uniq compare bases));
  List.iter
    (fun (name, _, width) ->
      if width < 1 then Alcotest.failf "%s has empty tag range" name)
    Coll.tag_table

(* ------------------------------------------------------------------ *)
(* Oracle tests: each algorithm vs its linear reference                *)
(* ------------------------------------------------------------------ *)

(* 2..9 covers 2 through 8 = power-of-two and 3,5,6,7,9 = the
   non-power-of-two pre-phase paths (rem folding, odd tails). *)
let oracle_sizes = [ 2; 3; 4; 5; 6; 7; 8; 9 ]

let test_allreduce_oracle () =
  List.iter
    (fun n ->
      List.iter
        (fun bytes ->
          (* The oracle: the linear algorithm on the same inputs. *)
          let expected = ref Bytes.empty in
          run_quiescent ~n "allreduce linear oracle" (fun p ->
              let comm = Mpi.comm_world (Mpi.world_of p) in
              let mine = payload (Mpi.rank p) bytes in
              let r = Coll.allreduce ~algo:`Linear p comm ~op:Coll.sum_i64 mine in
              if Mpi.rank p = 0 then expected := r);
          List.iter
            (fun (algo, name) ->
              run_quiescent ~n ("allreduce " ^ name) (fun p ->
                  let comm = Mpi.comm_world (Mpi.world_of p) in
                  let mine = payload (Mpi.rank p) bytes in
                  let keep = Bytes.copy mine in
                  let r = Coll.allreduce ~algo p comm ~op:Coll.sum_i64 mine in
                  Alcotest.(check bytes)
                    (Printf.sprintf "%s n=%d bytes=%d rank=%d input intact"
                       name n bytes (Mpi.rank p))
                    keep mine;
                  Alcotest.(check bytes)
                    (Printf.sprintf "%s n=%d bytes=%d rank=%d" name n bytes
                       (Mpi.rank p))
                    !expected r))
            ([ (`Rd, "rd"); (`Auto, "auto") ]
            @
            (* Rabenseifner needs >= 1 granule per member of the pow2
               subgroup. *)
            if bytes / 8 >= n then [ (`Rabenseifner, "rabenseifner") ]
            else []))
        [ 64; 1024 ])
    oracle_sizes

let test_bcast_oracle () =
  List.iter
    (fun n ->
      List.iter
        (fun bytes ->
          List.iter
            (fun (algo, name) ->
              let root = (n - 1) mod n in
              run_quiescent ~n ("bcast " ^ name) (fun p ->
                  let comm = Mpi.comm_world (Mpi.world_of p) in
                  let me = Mpi.rank p in
                  let b =
                    if me = root then Bytes.copy (payload 42 bytes)
                    else Bytes.create bytes
                  in
                  Coll.bcast ~algo p comm ~root (Bv.of_bytes b);
                  Alcotest.(check bytes)
                    (Printf.sprintf "%s n=%d bytes=%d rank=%d" name n bytes me)
                    (payload 42 bytes) b))
            [ (`Binomial, "binomial"); (`Scatter_allgather, "scag");
              (`Auto, "auto") ])
        [ 63; 1024 ])
    oracle_sizes

let test_scatter_gather_oracle () =
  List.iter
    (fun n ->
      List.iter
        (fun block ->
          List.iter
            (fun (algo, name) ->
              let root = n / 2 in
              run_quiescent ~n
                ("scatter/gather " ^ name)
                (fun p ->
                     let comm = Mpi.comm_world (Mpi.world_of p) in
                     let me = Mpi.rank p in
                     (* Scatter: rank r must get part r. *)
                     let parts =
                       if me = root then
                         Some
                           (Array.init n (fun i ->
                                Bv.of_bytes (payload i block)))
                       else None
                     in
                     let mine = Bytes.create block in
                     Coll.scatter ~algo ~block p comm ~root ~parts
                       ~recv:(Bv.of_bytes mine);
                     Alcotest.(check bytes)
                       (Printf.sprintf "scatter/%s n=%d block=%d rank=%d" name
                          n block me)
                       (payload me block) mine;
                     (* Gather the same data back: root must reassemble. *)
                     let out =
                       if me = root then
                         Some (Array.init n (fun _ -> Bytes.create block))
                       else None
                     in
                     Coll.gather ~algo ~block p comm ~root
                       ~send:(Bv.of_bytes mine)
                       ~parts:
                         (Option.map (Array.map Bv.of_bytes) out);
                     match out with
                     | Some arr ->
                         Array.iteri
                           (fun i b ->
                             Alcotest.(check bytes)
                               (Printf.sprintf "gather/%s n=%d block=%d part=%d"
                                  name n block i)
                               (payload i block) b)
                           arr
                     | None -> ()))
            [ (`Linear, "linear"); (`Binomial, "binomial"); (`Auto, "auto") ])
        [ 16; 1000 ])
    oracle_sizes

let test_allgather_oracle () =
  List.iter
    (fun n ->
      List.iter
        (fun block ->
          let algos =
            [ (`Ring, "ring"); (`Auto, "auto") ]
            @ if n land (n - 1) = 0 then [ (`Rd, "rd") ] else []
          in
          List.iter
            (fun (algo, name) ->
              run_quiescent ~n ("allgather " ^ name) (fun p ->
                  let comm = Mpi.comm_world (Mpi.world_of p) in
                  let me = Mpi.rank p in
                  let blocks =
                    Coll.allgather ~algo p comm ~send:(payload me block)
                  in
                  Alcotest.(check int)
                    (Printf.sprintf "allgather/%s n=%d count" name n)
                    n (Array.length blocks);
                  Array.iteri
                    (fun i b ->
                      Alcotest.(check bytes)
                        (Printf.sprintf "allgather/%s n=%d block=%d @%d"
                           name n block i)
                        (payload i block) b)
                    blocks))
            algos)
        [ 8; 640 ])
    oracle_sizes

let test_allgather_rd_rejects_non_pow2 () =
  ignore
    (Mpi.run ~n:3 (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         Alcotest.check_raises "rd on 3 ranks" (Invalid_argument
           "Collectives.allgather: recursive doubling needs a power-of-two \
            communicator") (fun () ->
             ignore (Coll.allgather ~algo:`Rd p comm ~send:(Bytes.create 8)))))

(* ------------------------------------------------------------------ *)
(* Nonblocking collectives vs the blocking oracles                     *)
(* ------------------------------------------------------------------ *)

(* The blocking result of sum_i64 over ranks 0..n-1, computed locally:
   the oracle for ireduce/iallreduce. *)
let fold_sum n bytes =
  let acc = Bytes.copy (payload 0 bytes) in
  for r = 1 to n - 1 do
    Coll.sum_i64 acc (payload r bytes)
  done;
  acc

(* One body exercising every i-collective back to back; run over every
   oracle size so the schedules see power-of-two and ragged
   communicators, and always followed by the quiescence check (no
   schedule may leave stray posted receives or unclaimed messages). *)
let icoll_body n p =
  let comm = Mpi.comm_world (Mpi.world_of p) in
  let me = Mpi.rank p in
  (* ibarrier *)
  ignore (Mpi.wait p (Coll.ibarrier p comm));
  (* ibcast *)
  let broot = 1 mod n in
  let bbytes = 300 in
  let bbuf =
    if me = broot then Bytes.copy (payload 77 bbytes)
    else Bytes.create bbytes
  in
  ignore (Mpi.wait p (Coll.ibcast p comm ~root:broot (Bv.of_bytes bbuf)));
  Alcotest.(check bytes)
    (Printf.sprintf "ibcast n=%d rank=%d" n me)
    (payload 77 bbytes) bbuf;
  (* iscatter / igather round trip *)
  let block = 64 in
  let sroot = n - 1 in
  let parts =
    if me = sroot then
      Some (Array.init n (fun i -> Bv.of_bytes (payload i block)))
    else None
  in
  let mine = Bytes.create block in
  ignore
    (Mpi.wait p
       (Coll.iscatter ~block p comm ~root:sroot ~parts
          ~recv:(Bv.of_bytes mine)));
  Alcotest.(check bytes)
    (Printf.sprintf "iscatter n=%d rank=%d" n me)
    (payload me block) mine;
  let out =
    if me = sroot then Some (Array.init n (fun _ -> Bytes.create block))
    else None
  in
  ignore
    (Mpi.wait p
       (Coll.igather ~block p comm ~root:sroot ~send:(Bv.of_bytes mine)
          ~parts:(Option.map (Array.map Bv.of_bytes) out)));
  (match out with
  | Some arr ->
      Array.iteri
        (fun i b ->
          Alcotest.(check bytes)
            (Printf.sprintf "igather n=%d part=%d" n i)
            (payload i block) b)
        arr
  | None -> ());
  (* iallgather *)
  let ag = 48 in
  let req, blocks = Coll.iallgather p comm ~send:(payload me ag) in
  ignore (Mpi.wait p req);
  Alcotest.(check int) (Printf.sprintf "iallgather n=%d count" n) n
    (Array.length blocks);
  Array.iteri
    (fun i b ->
      Alcotest.(check bytes)
        (Printf.sprintf "iallgather n=%d @%d" n i)
        (payload i ag) b)
    blocks;
  (* ialltoall: cell (src, dst) carries payload (src * n + dst). *)
  let a2a = 32 in
  let send = Array.init n (fun d -> payload ((me * n) + d) a2a) in
  let req, recvd = Coll.ialltoall p comm ~send in
  ignore (Mpi.wait p req);
  Array.iteri
    (fun s b ->
      Alcotest.(check bytes)
        (Printf.sprintf "ialltoall n=%d from=%d" n s)
        (payload ((s * n) + me) a2a)
        b)
    recvd;
  (* ireduce at root 0 *)
  let rbytes = 128 in
  let req, acc = Coll.ireduce p comm ~root:0 ~op:Coll.sum_i64 (payload me rbytes) in
  ignore (Mpi.wait p req);
  (match acc with
  | Some b ->
      Alcotest.(check bytes)
        (Printf.sprintf "ireduce n=%d" n)
        (fold_sum n rbytes) b
  | None ->
      if me = 0 then Alcotest.fail "ireduce: root got no buffer");
  (* iallreduce *)
  let req, total = Coll.iallreduce p comm ~op:Coll.sum_i64 (payload me rbytes) in
  ignore (Mpi.wait p req);
  Alcotest.(check bytes)
    (Printf.sprintf "iallreduce n=%d rank=%d" n me)
    (fold_sum n rbytes) total;
  (* iscan: rank r holds the prefix over 0..r. *)
  let sbytes = 96 in
  let req, prefix = Coll.iscan p comm ~op:Coll.sum_i64 (payload me sbytes) in
  ignore (Mpi.wait p req);
  Alcotest.(check bytes)
    (Printf.sprintf "iscan n=%d rank=%d" n me)
    (fold_sum (me + 1) sbytes)
    prefix

let test_icoll_oracle () =
  List.iter
    (fun n -> run_quiescent ~n "icoll suite" (icoll_body n))
    oracle_sizes

let test_icoll_overlapping_kinds () =
  (* Three different collectives in flight at once on the same
     communicator: the per-collective tag ranges must keep their traffic
     apart even though the schedules interleave in the progress loop. *)
  List.iter
    (fun n ->
      run_quiescent ~n "icoll overlap kinds" (fun p ->
          let comm = Mpi.comm_world (Mpi.world_of p) in
          let me = Mpi.rank p in
          let bbytes = 256 in
          let bbuf =
            if me = 0 then Bytes.copy (payload 9 bbytes)
            else Bytes.create bbytes
          in
          let r_bcast = Coll.ibcast p comm ~root:0 (Bv.of_bytes bbuf) in
          let r_bar = Coll.ibarrier p comm in
          let r_red, total =
            Coll.iallreduce p comm ~op:Coll.sum_i64 (payload me 64)
          in
          let reqs = [ r_bcast; r_bar; r_red ] in
          (* Drain via the request-set calls rather than one-by-one. *)
          let pending = ref reqs in
          while !pending <> [] do
            let finished = Mpi.wait_some p !pending in
            pending :=
              List.filter (fun r -> not (List.memq r finished)) !pending
          done;
          Alcotest.(check bool) "all complete" true (Mpi.test_all p reqs);
          Alcotest.(check bytes)
            (Printf.sprintf "overlapped ibcast n=%d rank=%d" n me)
            (payload 9 bbytes) bbuf;
          Alcotest.(check bytes)
            (Printf.sprintf "overlapped iallreduce n=%d rank=%d" n me)
            (fold_sum n 64) total))
    [ 2; 3; 4; 5; 8 ]

let test_icoll_under_fault () =
  (* Same i-collective suite under a lossy, duplicating, corrupting
     channel with the reliable layer on: results must still match and —
     the point of the test — the world must still be quiescent, i.e. the
     schedules' retransmit traffic is fully claimed. *)
  List.iter
    (fun n ->
      let fault =
        Mpi_core.Fault.plan ~seed:7 ~drop:0.05 ~duplicate:0.02 ~corrupt:0.01
          ()
      in
      run_quiescent ~fault ~n "icoll under fault" (icoll_body n))
    [ 3; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Non-commutative operator: rank order must be preserved              *)
(* ------------------------------------------------------------------ *)

(* 2x2 matrix multiply over Z/256: associative, NOT commutative. Each
   matrix is 4 one-byte cells (granule 4 with a padded layout would also
   work; one byte per cell keeps it simple). [op acc x] computes
   acc := acc * x, matching the left-to-right rank order MPI requires for
   non-commutative operators. *)
let matmul acc x =
  let g b i = Char.code (Bytes.get b i) in
  let a0 = g acc 0 and a1 = g acc 1 and a2 = g acc 2 and a3 = g acc 3 in
  let b0 = g x 0 and b1 = g x 1 and b2 = g x 2 and b3 = g x 3 in
  Bytes.set acc 0 (Char.chr (((a0 * b0) + (a1 * b2)) land 0xff));
  Bytes.set acc 1 (Char.chr (((a0 * b1) + (a1 * b3)) land 0xff));
  Bytes.set acc 2 (Char.chr (((a2 * b0) + (a3 * b2)) land 0xff));
  Bytes.set acc 3 (Char.chr (((a2 * b1) + (a3 * b3)) land 0xff))

let matrix_of_rank r =
  Bytes.init 4 (fun i -> Char.chr (((r * 5) + (i * 3) + 1) land 0xff))

let seq_product lo hi =
  let acc = Bytes.copy (matrix_of_rank lo) in
  for r = lo + 1 to hi do
    matmul acc (matrix_of_rank r)
  done;
  acc

let test_non_commutative_rank_order () =
  List.iter
    (fun n ->
      ignore
        (Mpi.run ~n (fun p ->
             let comm = Mpi.comm_world (Mpi.world_of p) in
             let me = Mpi.rank p in
             let mine = matrix_of_rank me in
             (* reduce folds in rank order at any root. *)
             (match Coll.reduce p comm ~root:(n - 1) ~op:matmul mine with
             | Some acc ->
                 Alcotest.(check bytes)
                   (Printf.sprintf "reduce n=%d" n)
                   (seq_product 0 (n - 1))
                   acc
             | None -> ());
             (* scan: rank r holds the product of 0..r. *)
             let prefix = Coll.scan p comm ~op:matmul mine in
             Alcotest.(check bytes)
               (Printf.sprintf "scan n=%d rank=%d" n me)
               (seq_product 0 me) prefix;
             (* allreduce: recursive doubling preserves rank order, and
                `Auto with ~commutative:false must never pick
                Rabenseifner. *)
             List.iter
               (fun algo ->
                 let r =
                   Coll.allreduce ~algo ~granule:4 ~commutative:false p comm
                     ~op:matmul mine
                 in
                 Alcotest.(check bytes)
                   (Printf.sprintf "allreduce n=%d rank=%d" n me)
                   (seq_product 0 (n - 1))
                   r)
               [ `Rd; `Auto; `Linear ])))
    oracle_sizes

let test_policy_respects_commutativity () =
  (* Whatever the payload size, a non-commutative operator must never be
     routed to Rabenseifner (recursive halving reorders the fold). *)
  List.iter
    (fun n ->
      List.iter
        (fun bytes ->
          match
            Coll.allreduce_algo_for Simtime.Cost.native_cpp ~n ~bytes
              ~granule:8 ~commutative:false
          with
          | `Rabenseifner ->
              Alcotest.failf
                "policy picked Rabenseifner for a non-commutative op \
                 (n=%d bytes=%d)"
                n bytes
          | `Rd | `Linear -> ())
        [ 64; 16_384; 262_144; 4_194_304 ])
    [ 2; 3; 8; 32; 64 ]

(* ------------------------------------------------------------------ *)
(* Round complexity: trace-verified O(log n)                           *)
(* ------------------------------------------------------------------ *)

let test_allreduce_rd_log_rounds () =
  (* At 32 (a power of two) ranks, recursive doubling must complete in
     exactly log2 32 = 5 exchange rounds: 5 isends per rank, no more. *)
  let n = 32 in
  let env = Env.create ~cost:Simtime.Cost.native_cpp () in
  let tr = Mpi_core.Trace.enable ~capacity:65_536 env in
  ignore
    (Mpi.run ~env ~n (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         ignore (Coll.allreduce ~algo:`Rd p comm ~op:Coll.sum_i64 (payload 1 64))));
  let sends = Array.make n 0 in
  List.iter
    (fun (e : Mpi_core.Trace.event) ->
      if e.op = "isend" || e.op = "isend/rndv" then
        sends.(e.rank) <- sends.(e.rank) + 1)
    (Mpi_core.Trace.events tr);
  Mpi_core.Trace.disable env;
  Array.iteri
    (fun r c ->
      Alcotest.(check int) (Printf.sprintf "rank %d sends" r) 5 c)
    sends

let test_allreduce_sched_log_rounds () =
  (* Same claim, restated against the schedule engine's own step events:
     the recursive-doubling schedule at 32 ranks carries exactly 5 isend
     steps per rank, spread over 5 distinct rounds (r0..r4). This pins
     the round-barrier dependency encoding, not just the wire traffic. *)
  let n = 32 in
  let env = Env.create ~cost:Simtime.Cost.native_cpp () in
  let tr = Mpi_core.Trace.enable ~capacity:65_536 env in
  ignore
    (Mpi.run ~env ~n (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         ignore (Coll.allreduce ~algo:`Rd p comm ~op:Coll.sum_i64 (payload 1 64))));
  let isends = Array.make n 0 in
  let rounds = Hashtbl.create 8 in
  List.iter
    (fun (e : Mpi_core.Trace.event) ->
      (* detail: "allreduce[3] r2 isend dst=17 tag=.. 64B" *)
      if e.op = "sched/step" then
        match String.split_on_char ' ' e.detail with
        | _ :: round :: "isend" :: _ ->
            isends.(e.rank) <- isends.(e.rank) + 1;
            Hashtbl.replace rounds round ()
        | _ -> ())
    (Mpi_core.Trace.events tr);
  Mpi_core.Trace.disable env;
  Array.iteri
    (fun r c ->
      Alcotest.(check int) (Printf.sprintf "rank %d isend steps" r) 5 c)
    isends;
  Alcotest.(check int) "distinct exchange rounds" 5 (Hashtbl.length rounds)

let coll_time ~n body =
  let env = Env.create ~cost:Simtime.Cost.native_cpp () in
  let t0 = ref 0.0 and t1 = ref 0.0 in
  ignore
    (Mpi.run ~env ~n (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         Coll.barrier p comm;
         if Mpi.rank p = 0 then t0 := Env.now_us env;
         body p comm;
         Coll.barrier p comm;
         if Mpi.rank p = 0 then t1 := Env.now_us env));
  !t1 -. !t0

let test_rabenseifner_beats_rd_past_threshold () =
  (* The acceptance claim behind coll_rabenseifner_min_bytes: at 16 ranks
     x 256 KiB (past the threshold) Rabenseifner must beat recursive
     doubling; below the threshold (16 KiB) recursive doubling must hold
     its ground. *)
  let size = 262_144 in
  let t_rd =
    coll_time ~n:16 (fun p comm ->
        ignore
          (Coll.allreduce ~algo:`Rd p comm ~op:Coll.sum_i64
             (Bytes.create size)))
  in
  let t_rab =
    coll_time ~n:16 (fun p comm ->
        ignore
          (Coll.allreduce ~algo:`Rabenseifner p comm ~op:Coll.sum_i64
             (Bytes.create size)))
  in
  if t_rab >= t_rd then
    Alcotest.failf "rabenseifner (%.1f us) not faster than rd (%.1f us)"
      t_rab t_rd;
  let small = 16_384 in
  let t_rd_small =
    coll_time ~n:16 (fun p comm ->
        ignore
          (Coll.allreduce ~algo:`Rd p comm ~op:Coll.sum_i64
             (Bytes.create small)))
  in
  let t_rab_small =
    coll_time ~n:16 (fun p comm ->
        ignore
          (Coll.allreduce ~algo:`Rabenseifner p comm ~op:Coll.sum_i64
             (Bytes.create small)))
  in
  if t_rd_small >= t_rab_small then
    Alcotest.failf "rd (%.1f us) not faster than rabenseifner (%.1f us) below \
                    the threshold"
      t_rd_small t_rab_small

(* ------------------------------------------------------------------ *)
(* Matching queues: FIFO order and O(1) append under backlog           *)
(* ------------------------------------------------------------------ *)

let envelope ~src ~tag ~seq =
  {
    Mpi_core.Packet.e_src = src;
    e_dst = 0;
    e_tag = tag;
    e_context = 0;
    e_bytes = 8;
    e_seq = seq;
  }

let test_queue_fifo_order () =
  let env = Env.create ~cost:Simtime.Cost.native_cpp () in
  let q = Mpi_core.Queues.create env in
  (* Two receives with identical patterns: the first posted must match
     first (non-overtaking). Interleave appends and takes to exercise the
     two-list structure's back-to-front folding. *)
  let post id =
    Mpi_core.Queues.post_recv q
      {
        Mpi_core.Queues.p_pattern =
          { Mpi_core.Tag_match.m_src = 1; m_tag = 7; m_context = 0 };
        p_sink = Bv.of_bytes (Bytes.create 8);
        p_req = Mpi_core.Request.create ~id Mpi_core.Request.Recv_req;
      }
  in
  post 1;
  post 2;
  let e = envelope ~src:1 ~tag:7 ~seq:1 in
  (match Mpi_core.Queues.take_posted q e with
  | Some p ->
      Alcotest.(check int) "oldest first" 1
        (Mpi_core.Request.id p.Mpi_core.Queues.p_req)
  | None -> Alcotest.fail "no match");
  post 3;
  (match Mpi_core.Queues.take_posted q e with
  | Some p ->
      Alcotest.(check int) "then second" 2
        (Mpi_core.Request.id p.Mpi_core.Queues.p_req)
  | None -> Alcotest.fail "no match");
  Alcotest.(check int) "one left" 1 (Mpi_core.Queues.posted_length q);
  (* Unexpected side: arrival order, across the append boundary. *)
  for i = 1 to 5 do
    Mpi_core.Queues.add_unexpected q
      (Mpi_core.Queues.U_eager (envelope ~src:2 ~tag:i ~seq:i, Bytes.create 8))
  done;
  let any =
    {
      Mpi_core.Tag_match.m_src = Mpi_core.Tag_match.any_source;
      m_tag = Mpi_core.Tag_match.any_tag;
      m_context = 0;
    }
  in
  for i = 1 to 5 do
    match Mpi_core.Queues.take_unexpected q any with
    | Some (Mpi_core.Queues.U_eager (e, _)) ->
        Alcotest.(check int)
          (Printf.sprintf "arrival order %d" i)
          i e.Mpi_core.Packet.e_tag
    | _ -> Alcotest.fail "missing unexpected message"
  done;
  Alcotest.(check int) "drained" 0 (Mpi_core.Queues.unexpected_length q)

let test_queue_backlog_linear_time () =
  (* 20k appends then a head match: with the old [list @ [x]] append this
     is ~200M list-cell copies and visibly hangs; with the two-list FIFO
     it is instant. The probe accounting still charges only the elements
     actually scanned by the one search. *)
  let env = Env.create ~cost:Simtime.Cost.native_cpp () in
  let q = Mpi_core.Queues.create env in
  let backlog = 20_000 in
  for i = 1 to backlog do
    Mpi_core.Queues.add_unexpected q
      (Mpi_core.Queues.U_eager (envelope ~src:1 ~tag:i ~seq:i, Bytes.create 8))
  done;
  Alcotest.(check int) "size counter" backlog
    (Mpi_core.Queues.unexpected_length q);
  let t_before = Env.now_us env in
  (match
     Mpi_core.Queues.take_unexpected q
       { Mpi_core.Tag_match.m_src = 1; m_tag = 1; m_context = 0 }
   with
  | Some (Mpi_core.Queues.U_eager (e, _)) ->
      Alcotest.(check int) "head matched" 1 e.Mpi_core.Packet.e_tag
  | _ -> Alcotest.fail "head not matched");
  (* One element inspected -> exactly one probe charged. *)
  let probe_ns = Simtime.Cost.native_cpp.Simtime.Cost.queue_probe_ns in
  Alcotest.(check (float 0.001))
    "one probe charged" (probe_ns /. 1000.0)
    (Env.now_us env -. t_before);
  Alcotest.(check int) "size after take" (backlog - 1)
    (Mpi_core.Queues.unexpected_length q)

(* ------------------------------------------------------------------ *)
(* Reliable go-back-N window under a burst                             *)
(* ------------------------------------------------------------------ *)

(* Minimal in-memory channel: per-rank FIFO mailboxes, no arrival
   latency. Enough to drive Reliable's window bookkeeping directly. *)
let stub_channel () =
  let boxes : (int, Mpi_core.Packet.t Queue.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let box r =
    match Hashtbl.find_opt boxes r with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace boxes r q;
        q
  in
  let next = ref 2 in
  {
    Mpi_core.Channel.name = "stub";
    send = (fun ~src:_ ~dst p -> Queue.add p (box dst));
    poll =
      (fun ~rank ->
        let q = box rank in
        if Queue.is_empty q then None else Some (Queue.pop q));
    add_rank =
      (fun () ->
        let r = !next in
        incr next;
        r);
    n_ranks = (fun () -> !next);
  }

let test_reliable_window_burst () =
  let env = Env.create ~cost:Simtime.Cost.native_cpp () in
  let chan, handle =
    Mpi_core.Reliable.wrap ~env (stub_channel ())
  in
  let burst = 3000 in
  let dummy i =
    Mpi_core.Packet.Eager (envelope ~src:0 ~tag:i ~seq:i, Bytes.create 8)
  in
  (* A fire-hose of sends 0 -> 1: each send appends to the go-back-N
     window (O(1) now; the old list append made this burst quadratic). *)
  for i = 1 to burst do
    chan.Mpi_core.Channel.send ~src:0 ~dst:1 (dummy i)
  done;
  (* Rank 1 drains the frames in order; its acks land in rank 0's
     mailbox. *)
  let got = ref 0 in
  let continue = ref true in
  while !continue do
    match chan.Mpi_core.Channel.poll ~rank:1 with
    | Some (Mpi_core.Packet.Eager (e, _)) ->
        incr got;
        Alcotest.(check int) "in order" !got e.Mpi_core.Packet.e_tag
    | Some _ -> ()
    | None -> continue := false
  done;
  Alcotest.(check int) "all delivered" burst !got;
  (* Rank 0 processes the cumulative acks: the whole window must trim. *)
  let continue = ref true in
  while !continue do
    if chan.Mpi_core.Channel.poll ~rank:0 = None then continue := false
  done;
  Alcotest.(check int) "window empty" 0 (Mpi_core.Reliable.stranded handle)

(* ------------------------------------------------------------------ *)
(* Buffer pool: sorted pool, single-scan best fit                      *)
(* ------------------------------------------------------------------ *)

let test_buffer_pool_best_fit () =
  let rt = Vm.Runtime.create () in
  let pool = Motor.Buffer_pool.create rt.Vm.Runtime.gc in
  let b300 = Motor.Buffer_pool.acquire pool 300 in
  let b50 = Motor.Buffer_pool.acquire pool 50 in
  let b100 = Motor.Buffer_pool.acquire pool 100 in
  (* Release out of order: the pool must still serve best fit. *)
  Motor.Buffer_pool.release pool b300;
  Motor.Buffer_pool.release pool b50;
  Motor.Buffer_pool.release pool b100;
  Alcotest.(check int) "pooled" 3 (Motor.Buffer_pool.pooled pool);
  (* 60 bytes fit the 100-buffer (smallest adequate), not the 300. *)
  let a = Motor.Buffer_pool.acquire pool 60 in
  Alcotest.(check bool) "best fit 60 -> 100" true (a == b100);
  (* 200 bytes skip the 50 and take the 300. *)
  let b = Motor.Buffer_pool.acquire pool 200 in
  Alcotest.(check bool) "best fit 200 -> 300" true (b == b300);
  (* 10 bytes take the smallest. *)
  let c = Motor.Buffer_pool.acquire pool 10 in
  Alcotest.(check bool) "best fit 10 -> 50" true (c == b50);
  Alcotest.(check int) "drained" 0 (Motor.Buffer_pool.pooled pool)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "coll_algorithms"
    [
      ( "tags",
        [ Alcotest.test_case "ranges disjoint" `Quick test_tag_table_disjoint ]
      );
      ( "oracles",
        [
          Alcotest.test_case "allreduce vs linear" `Quick
            test_allreduce_oracle;
          Alcotest.test_case "bcast both algorithms" `Quick test_bcast_oracle;
          Alcotest.test_case "scatter/gather binomial vs linear" `Quick
            test_scatter_gather_oracle;
          Alcotest.test_case "allgather rd vs ring" `Quick
            test_allgather_oracle;
          Alcotest.test_case "allgather rd rejects non-pow2" `Quick
            test_allgather_rd_rejects_non_pow2;
        ] );
      ( "nonblocking",
        [
          Alcotest.test_case "every i-collective vs blocking oracle" `Quick
            test_icoll_oracle;
          Alcotest.test_case "three kinds in flight at once" `Quick
            test_icoll_overlapping_kinds;
          Alcotest.test_case "i-collectives quiescent under faults" `Quick
            test_icoll_under_fault;
        ] );
      ( "rank order",
        [
          Alcotest.test_case "non-commutative operator" `Quick
            test_non_commutative_rank_order;
          Alcotest.test_case "policy respects commutativity" `Quick
            test_policy_respects_commutativity;
        ] );
      ( "complexity",
        [
          Alcotest.test_case "rd allreduce is log n rounds at 32 ranks"
            `Quick test_allreduce_rd_log_rounds;
          Alcotest.test_case "rd schedule is 5 isend steps over 5 rounds"
            `Quick test_allreduce_sched_log_rounds;
          Alcotest.test_case "rabenseifner crossover" `Quick
            test_rabenseifner_beats_rd_past_threshold;
        ] );
      ( "hot paths",
        [
          Alcotest.test_case "queue FIFO order" `Quick test_queue_fifo_order;
          Alcotest.test_case "queue backlog is linear" `Quick
            test_queue_backlog_linear_time;
          Alcotest.test_case "reliable window burst" `Quick
            test_reliable_window_burst;
          Alcotest.test_case "buffer pool best fit" `Quick
            test_buffer_pool_best_fit;
        ] );
    ]
