(* One-sided RMA: the registration cache in isolation, put/get/accumulate
   oracles under both synchronization flavours (fence and lock/unlock) at
   2-9 ranks, epoch/win_free discipline, RDMA-channel cost accounting and
   fault-plan survival of the rendezvous paths. *)

module Mpi = Mpi_core.Mpi
module Comm = Mpi_core.Comm
module Rma = Mpi_core.Rma
module Rdma = Mpi_core.Rdma_channel
module Cache = Mpi_core.Rdma_channel.Cache
module Fault = Mpi_core.Fault
module Key = Simtime.Stats.Key

let stats w = (Mpi.env w).Simtime.Env.stats
let counter w k = Simtime.Stats.get (stats w) k

let check_quiescent w =
  Alcotest.(check (list (pair int string)))
    "quiescent" [] (Mpi.quiescence_report w)

(* ------------------------------------------------------------------ *)
(* Registration cache in isolation                                     *)
(* ------------------------------------------------------------------ *)

let is_hit = function Cache.Hit -> true | Cache.Miss _ -> false

let evicted = function
  | Cache.Hit -> []
  | Cache.Miss { evicted } -> evicted

let test_cache_hit_miss () =
  let c = Cache.create ~capacity_bytes:4096 () in
  Alcotest.(check bool) "cold miss" false (is_hit (Cache.access c ~addr:0 ~len:1024));
  Alcotest.(check bool) "re-access hits" true (is_hit (Cache.access c ~addr:0 ~len:1024));
  Alcotest.(check bool) "subrange hits" true (is_hit (Cache.access c ~addr:128 ~len:512));
  Alcotest.(check bool) "overlap past end misses" false
    (is_hit (Cache.access c ~addr:512 ~len:1024));
  Alcotest.(check int) "hits" 2 (Cache.hits c);
  Alcotest.(check int) "misses" 2 (Cache.misses c);
  Alcotest.(check int) "evictions" 0 (Cache.evictions c);
  Alcotest.(check int) "entries" 2 (Cache.entries c);
  Alcotest.(check int) "registered" 2048 (Cache.registered_bytes c)

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity_bytes:3000 () in
  ignore (Cache.access c ~addr:0 ~len:1000);
  ignore (Cache.access c ~addr:10_000 ~len:1000);
  ignore (Cache.access c ~addr:20_000 ~len:1000);
  (* Touch the oldest so the middle entry becomes LRU. *)
  ignore (Cache.access c ~addr:0 ~len:1000);
  let out = evicted (Cache.access c ~addr:30_000 ~len:1000) in
  Alcotest.(check (list (pair int int))) "LRU victim" [ (10_000, 1000) ] out;
  Alcotest.(check int) "capacity respected" 3000 (Cache.registered_bytes c);
  Alcotest.(check bool) "victim gone" false (Cache.mem c ~addr:10_000 ~len:1000);
  (* Re-registration after eviction is a fresh miss. *)
  Alcotest.(check bool) "re-register misses" false
    (is_hit (Cache.access c ~addr:10_000 ~len:1000));
  Alcotest.(check int) "eviction count grows" 2 (Cache.evictions c)

let test_cache_multi_eviction () =
  let c = Cache.create ~capacity_bytes:1000 () in
  ignore (Cache.access c ~addr:0 ~len:400);
  ignore (Cache.access c ~addr:1000 ~len:400);
  (* 800 bytes held; a 900-byte registration must evict both, LRU first. *)
  let out = evicted (Cache.access c ~addr:2000 ~len:900) in
  Alcotest.(check (list (pair int int)))
    "both evicted, LRU first" [ (0, 400); (1000, 400) ] out

let test_cache_pinning () =
  let c = Cache.create ~capacity_bytes:2000 () in
  ignore (Cache.pin c ~addr:0 ~len:1500);
  Alcotest.(check int) "pinned bytes" 1500 (Cache.pinned_bytes c);
  (* The pinned entry cannot be evicted: a miss larger than the remaining
     room registers over capacity rather than touch it. *)
  let out = evicted (Cache.access c ~addr:10_000 ~len:1000) in
  Alcotest.(check (list (pair int int))) "pinned survives" [] out;
  Alcotest.(check bool) "pinned still cached" true (Cache.mem c ~addr:0 ~len:1500);
  Cache.unpin c ~addr:0 ~len:1500;
  Alcotest.(check int) "unpinned" 0 (Cache.pinned_bytes c);
  (* Lazy deregistration: the entry stays cached and now evictable. *)
  Alcotest.(check bool) "still a hit after unpin" true
    (is_hit (Cache.access c ~addr:100 ~len:100));
  let out = evicted (Cache.access c ~addr:20_000 ~len:1800) in
  Alcotest.(check bool) "evictable after unpin" true
    (List.mem (0, 1500) out)

let test_cache_pin_hit_promotes () =
  let c = Cache.create ~capacity_bytes:4096 () in
  ignore (Cache.access c ~addr:0 ~len:1024);
  Alcotest.(check bool) "pin over cached range hits" true
    (is_hit (Cache.pin c ~addr:0 ~len:1024));
  Alcotest.(check int) "now pinned" 1024 (Cache.pinned_bytes c);
  Alcotest.(check_raises) "unpin of unpinned range raises"
    (Invalid_argument "Rdma_channel.Cache.unpin: no pinned entry covers [5000,+8)")
    (fun () -> Cache.unpin c ~addr:5000 ~len:8)

let test_cache_oversized_region () =
  let c = Cache.create ~capacity_bytes:1000 () in
  ignore (Cache.access c ~addr:0 ~len:500);
  (* A region larger than the whole capacity still registers (pinned I/O
     cannot be split), evicting everything evictable. *)
  let out = evicted (Cache.access c ~addr:4096 ~len:5000) in
  Alcotest.(check (list (pair int int))) "drained" [ (0, 500) ] out;
  Alcotest.(check int) "over capacity transiently" 5000 (Cache.registered_bytes c);
  Alcotest.(check bool) "oversized is cached" true (Cache.mem c ~addr:4096 ~len:5000)

(* ------------------------------------------------------------------ *)
(* Put/get/accumulate oracles: fence synchronization                   *)
(* ------------------------------------------------------------------ *)

let pattern ~rank ~len = Bytes.init len (fun i -> Char.chr ((rank * 31 + i) land 0xff))

(* Ring of puts: rank r writes its pattern into (r+1) mod n's window.
   After the fence every window holds its left neighbour's pattern; a
   second epoch of gets reads it back. *)
let fence_ring ?channel n () =
  let blk = 96 in
  let oks = Array.make n false in
  let w =
    Mpi.run ?channel ~n (fun p ->
        let r = Mpi.rank p in
        let comm = Mpi.comm_world (Mpi.world_of p) in
        let mine = Bytes.make blk '\000' in
        let win = Rma.win_create p ~comm mine in
        let right = (r + 1) mod n in
        let left = (r + n - 1) mod n in
        Rma.put win ~target:right ~target_off:0 (pattern ~rank:r ~len:blk)
          ~off:0 ~len:blk;
        Rma.win_fence win;
        let local_ok = Bytes.equal mine (pattern ~rank:left ~len:blk) in
        (* Second epoch: read the right neighbour's window remotely. *)
        let fetched = Bytes.create blk in
        Rma.get win ~target:right ~target_off:0 fetched ~off:0 ~len:blk;
        Rma.win_fence win;
        oks.(r) <- local_ok && Bytes.equal fetched (pattern ~rank:r ~len:blk);
        Rma.win_free win)
  in
  check_quiescent w;
  Array.iteri
    (fun r ok -> Alcotest.(check bool) (Printf.sprintf "rank %d" r) true ok)
    oks;
  Alcotest.(check int) "puts counted" n (counter w Key.rma_puts);
  Alcotest.(check int) "gets counted" n (counter w Key.rma_gets)

let test_fence_ring_sizes () =
  for n = 2 to 9 do
    fence_ring n ()
  done

let test_fence_self_put () =
  let w =
    Mpi.run ~n:2 (fun p ->
        let comm = Mpi.comm_world (Mpi.world_of p) in
        let mine = Bytes.make 32 '\000' in
        let win = Rma.win_create p ~comm mine in
        if Mpi.rank p = 0 then
          Rma.put win ~target:0 ~target_off:8 (Bytes.make 8 'x') ~off:0 ~len:8;
        Rma.win_fence win;
        if Mpi.rank p = 0 then
          Alcotest.(check bytes) "self put applied at fence"
            (Bytes.of_string "\000\000\000\000\000\000\000\000xxxxxxxx\
                              \000\000\000\000\000\000\000\000\000\000\000\000\000\000\000\000")
            mine;
        Rma.win_free win)
  in
  check_quiescent w

(* All ranks accumulate into rank 0's window. Sum over int64 lanes is
   order-insensitive; Matmul is associative but non-commutative, so the
   deferred application must fold strictly in rank order. *)
let matmul_oracle acc x =
  let g b i = Char.code (Bytes.get b i) in
  let a0 = g acc 0 and a1 = g acc 1 and a2 = g acc 2 and a3 = g acc 3 in
  let b0 = g x 0 and b1 = g x 1 and b2 = g x 2 and b3 = g x 3 in
  Bytes.set acc 0 (Char.chr (((a0 * b0) + (a1 * b2)) land 0xff));
  Bytes.set acc 1 (Char.chr (((a0 * b1) + (a1 * b3)) land 0xff));
  Bytes.set acc 2 (Char.chr (((a2 * b0) + (a3 * b2)) land 0xff));
  Bytes.set acc 3 (Char.chr (((a2 * b1) + (a3 * b3)) land 0xff))

let rank_matrix r = Bytes.init 4 (fun i -> Char.chr (((r * 5) + (i * 3) + 1) land 0xff))

let accumulate_oracle ~lock n () =
  let sum_cell = ref 0L in
  let mat_cell = ref Bytes.empty in
  let w =
    Mpi.run ~n (fun p ->
        let r = Mpi.rank p in
        let comm = Mpi.comm_world (Mpi.world_of p) in
        (* Rank 0 exposes [ 8-byte sum lane | 4-byte matrix ]; identity
           matrix so the fold is exactly the product of contributions. *)
        let mine =
          if r = 0 then begin
            let b = Bytes.make 12 '\000' in
            Bytes.set b 8 '\001';
            Bytes.set b 11 '\001';
            b
          end
          else Bytes.create 0
        in
        let win = Rma.win_create p ~comm mine in
        let contrib = Bytes.create 8 in
        Bytes.set_int64_le contrib 0 (Int64.of_int (r + 1));
        if lock then begin
          Rma.win_lock win ~target:0;
          Rma.accumulate win ~target:0 ~target_off:0 ~op:Rma.Sum contrib
            ~off:0 ~len:8;
          Rma.win_unlock win ~target:0;
          (* Matmul under lock would fold in lock-grant order, which is
             schedule-dependent; rank order is a fence-epoch guarantee. *)
          Rma.win_fence win;
          Rma.accumulate win ~target:0 ~target_off:8 ~op:Rma.Matmul
            (rank_matrix r) ~off:0 ~len:4;
          Rma.win_fence win
        end
        else begin
          Rma.accumulate win ~target:0 ~target_off:0 ~op:Rma.Sum contrib
            ~off:0 ~len:8;
          Rma.accumulate win ~target:0 ~target_off:8 ~op:Rma.Matmul
            (rank_matrix r) ~off:0 ~len:4;
          Rma.win_fence win
        end;
        if r = 0 then begin
          sum_cell := Bytes.get_int64_le mine 0;
          mat_cell := Bytes.sub mine 8 4
        end;
        Rma.win_free win)
  in
  check_quiescent w;
  let expect_sum = Int64.of_int (n * (n + 1) / 2) in
  Alcotest.(check int64) "commutative sum" expect_sum !sum_cell;
  let expect_mat = Bytes.of_string "\001\000\000\001" in
  for r = 0 to n - 1 do
    matmul_oracle expect_mat (rank_matrix r)
  done;
  Alcotest.(check bytes) "rank-order matmul fold" expect_mat !mat_cell

let test_accumulate_fence_sizes () =
  for n = 2 to 9 do
    accumulate_oracle ~lock:false n ()
  done

let test_accumulate_lock_sizes () =
  for n = 2 to 9 do
    accumulate_oracle ~lock:true n ()
  done

(* ------------------------------------------------------------------ *)
(* Passive target: lock/unlock                                         *)
(* ------------------------------------------------------------------ *)

(* Every rank takes rank 0's exclusive lock and writes its slot; after a
   closing fence (as a barrier) rank 0 sees every slot. Visibility at
   unlock is checked by the writer itself with a shared-lock get. *)
let lock_slots n () =
  let final = ref Bytes.empty in
  let w =
    Mpi.run ~n (fun p ->
        let r = Mpi.rank p in
        let comm = Mpi.comm_world (Mpi.world_of p) in
        let mine = if r = 0 then Bytes.make (8 * n) '\000' else Bytes.create 0 in
        let win = Rma.win_create p ~comm mine in
        let slot = Bytes.create 8 in
        Bytes.set_int64_le slot 0 (Int64.of_int ((r * 1000) + 7));
        Rma.win_lock win ~target:0;
        Rma.put win ~target:0 ~target_off:(8 * r) slot ~off:0 ~len:8;
        Rma.win_unlock win ~target:0;
        (* My update must be visible now: read it back under a shared
           lock. *)
        Rma.win_lock ~exclusive:false win ~target:0;
        let back = Bytes.create 8 in
        Rma.get win ~target:0 ~target_off:(8 * r) back ~off:0 ~len:8;
        Rma.win_unlock win ~target:0;
        Alcotest.(check bytes)
          (Printf.sprintf "rank %d sees its slot after unlock" r)
          slot back;
        Rma.win_fence win;
        if r = 0 then final := Bytes.copy mine;
        Rma.win_free win)
  in
  check_quiescent w;
  for r = 0 to n - 1 do
    Alcotest.(check int64)
      (Printf.sprintf "slot %d" r)
      (Int64.of_int ((r * 1000) + 7))
      (Bytes.get_int64_le !final (8 * r))
  done;
  Alcotest.(check bool) "locks counted" true (counter w Key.rma_locks >= 2 * n)

let test_lock_slots_sizes () =
  for n = 2 to 9 do
    lock_slots n ()
  done

(* ------------------------------------------------------------------ *)
(* Epoch discipline: win_free is a checked error inside an open epoch   *)
(* ------------------------------------------------------------------ *)

let test_free_with_unfenced_put () =
  let raised = ref false in
  let w =
    Mpi.run ~n:2 (fun p ->
        let comm = Mpi.comm_world (Mpi.world_of p) in
        let win = Rma.win_create p ~comm (Bytes.make 16 '\000') in
        if Mpi.rank p = 0 then begin
          Rma.put win ~target:1 ~target_off:0 (Bytes.make 8 'a') ~off:0 ~len:8;
          (match Rma.win_free win with
          | () -> ()
          | exception Invalid_argument _ -> raised := true)
        end;
        Rma.win_fence win;
        Rma.win_free win)
  in
  check_quiescent w;
  Alcotest.(check bool) "free with unfenced put raises" true !raised

let test_free_with_held_lock () =
  let raised = ref false in
  let w =
    Mpi.run ~n:2 (fun p ->
        let comm = Mpi.comm_world (Mpi.world_of p) in
        let win = Rma.win_create p ~comm (Bytes.make 16 '\000') in
        if Mpi.rank p = 0 then begin
          Rma.win_lock win ~target:1;
          (match Rma.win_free win with
          | () -> ()
          | exception Invalid_argument _ -> raised := true);
          Rma.win_unlock win ~target:1
        end;
        Rma.win_free win)
  in
  check_quiescent w;
  Alcotest.(check bool) "free with held lock raises" true !raised

let test_freed_window_rejects_ops () =
  let w =
    Mpi.run ~n:2 (fun p ->
        let comm = Mpi.comm_world (Mpi.world_of p) in
        let win = Rma.win_create p ~comm (Bytes.make 8 '\000') in
        Rma.win_free win;
        Alcotest.(check bool) "not exposed" false (Rma.exposed win);
        match
          Rma.put win ~target:0 ~target_off:0 (Bytes.make 8 'x') ~off:0 ~len:8
        with
        | () -> Alcotest.fail "put on freed window must raise"
        | exception Invalid_argument _ -> ())
  in
  check_quiescent w

let test_out_of_range_put () =
  let w =
    Mpi.run ~n:2 (fun p ->
        let r = Mpi.rank p in
        let comm = Mpi.comm_world (Mpi.world_of p) in
        (* Heterogeneous sizes: rank 1 exposes only 8 bytes. *)
        let win =
          Rma.win_create p ~comm (Bytes.make (if r = 0 then 64 else 8) '\000')
        in
        Alcotest.(check int) "peer size known" (if r = 0 then 8 else 64)
          (Rma.size_of win ~rank:(1 - r));
        if r = 0 then (
          match
            Rma.put win ~target:1 ~target_off:4 (Bytes.make 8 'x') ~off:0
              ~len:8
          with
          | () -> Alcotest.fail "out-of-range put must raise"
          | exception Invalid_argument _ -> ());
        Rma.win_fence win;
        Rma.win_free win)
  in
  check_quiescent w

(* ------------------------------------------------------------------ *)
(* RDMA channel: registration accounting end to end                    *)
(* ------------------------------------------------------------------ *)

let test_rdma_registration_amortized () =
  let big = 32_768 in
  let w =
    Mpi.run ~channel:`Rdma ~n:2 (fun p ->
        let r = Mpi.rank p in
        let comm = Mpi.comm_world (Mpi.world_of p) in
        let mine = Bytes.make big '\000' in
        let win = Rma.win_create p ~comm mine in
        let src = Bytes.make big 'r' in
        if r = 0 then
          (* Same origin buffer three times: first transfer registers,
             the rest hit the pin-down cache. *)
          for _ = 1 to 3 do
            Rma.put win ~target:1 ~target_off:0 src ~off:0 ~len:big
          done;
        Rma.win_fence win;
        (* Small put stages through bounce buffers: no registration. *)
        if r = 0 then
          Rma.put win ~target:1 ~target_off:0 src ~off:0 ~len:64;
        Rma.win_fence win;
        Rma.win_free win)
  in
  check_quiescent w;
  Alcotest.(check bool) "cache hits observed" true (counter w Key.rdma_reg_hits >= 2);
  (* Misses: two window pins + the first large-put registration. *)
  Alcotest.(check int) "misses" 3 (counter w Key.rdma_reg_misses);
  Alcotest.(check int) "eager copies" 1 (counter w Key.rdma_eager_copies);
  Alcotest.(check int) "rendezvous writes (32 KiB > 12 KiB crossover)" 3
    (counter w Key.rdma_write_rndv);
  (* Window pins released at win_free. *)
  (match Mpi.rdma_handle w with
  | None -> Alcotest.fail "rdma world must expose the fabric handle"
  | Some h ->
      for rank = 0 to 1 do
        Alcotest.(check int)
          (Printf.sprintf "rank %d pin table empty" rank)
          0
          (Cache.pinned_bytes (Rdma.cache h ~rank))
      done)

let test_rdma_read_variant_below_crossover () =
  let mid = 8_192 in
  let w =
    Mpi.run ~channel:`Rdma ~n:2 (fun p ->
        let comm = Mpi.comm_world (Mpi.world_of p) in
        let win = Rma.win_create p ~comm (Bytes.make mid '\000') in
        if Mpi.rank p = 0 then
          Rma.put win ~target:1 ~target_off:0 (Bytes.make mid 's') ~off:0
            ~len:mid;
        Rma.win_fence win;
        Rma.win_free win)
  in
  (* 8 KiB is above the RDMA eager threshold but below the 12 KiB
     write/read crossover: the read variant wins. *)
  Alcotest.(check int) "read rendezvous" 1 (counter w Key.rdma_read_rndv);
  Alcotest.(check int) "no write rendezvous" 0 (counter w Key.rdma_write_rndv)

(* ------------------------------------------------------------------ *)
(* Fault-plan coverage: rendezvous RMA survives a lossy wire           *)
(* ------------------------------------------------------------------ *)

let test_rma_under_faults () =
  let big = 131_072 in
  (* > CH3 eager threshold: real RTS/CTS rendezvous *)
  let ok = ref false in
  let fault = Fault.plan ~seed:11 ~drop:0.05 ~duplicate:0.02 ~delay:0.05 () in
  let w =
    Mpi.run ~fault ~n:2 (fun p ->
        let r = Mpi.rank p in
        let comm = Mpi.comm_world (Mpi.world_of p) in
        let mine = Bytes.make big '\000' in
        let win = Rma.win_create p ~comm mine in
        if r = 0 then
          Rma.put win ~target:1 ~target_off:0 (pattern ~rank:0 ~len:big)
            ~off:0 ~len:big;
        Rma.win_fence win;
        if r = 1 then ok := Bytes.equal mine (pattern ~rank:0 ~len:big);
        let back = Bytes.create 256 in
        Rma.get win ~target:(1 - r) ~target_off:0 back ~off:0 ~len:256;
        Rma.win_fence win;
        Rma.win_free win)
  in
  check_quiescent w;
  Alcotest.(check bool) "rendezvous put intact under faults" true !ok;
  Alcotest.(check bool) "wire actually dropped frames" true
    (counter w Key.fault_drops > 0)

(* ------------------------------------------------------------------ *)
(* Managed windows under the GC pinning policy                         *)
(* ------------------------------------------------------------------ *)

module World = Motor.World
module Smp = Motor.System_mp
module Pin = Motor.Pinning
module Om = Vm.Object_model
module VGc = Vm.Gc
module Heap = Vm.Heap
module Types = Vm.Types
module Invariant = Check.Invariant

let no_violations label vs =
  List.iter (fun v -> Format.eprintf "%a@." Invariant.pp v) vs;
  Alcotest.(check int) label 0 (List.length vs)

let payload_digest gc obj =
  let addr, len = Om.payload_region gc obj in
  Digest.to_hex (Digest.subbytes (Heap.mem (VGc.heap gc)) addr len)

(* A full collection during an open exposure epoch: the conditional pin
   (Deferred policy) must keep the window's backing object in place —
   address and contents digest both unchanged — and evaporate at the
   first collection after owin_free. *)
let test_owin_survives_full_collection () =
  let elems = 64 in
  let w = World.create ~n:2 () in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let r = World.rank ctx in
      let comm = Smp.comm_world ctx in
      let a = Om.alloc_array gc (Types.Eprim Types.I4) elems in
      for i = 0 to elems - 1 do
        Om.set_elem_int gc a i ((r * 100) + i)
      done;
      Alcotest.(check bool) "window object starts young" true
        (Heap.in_young (VGc.heap gc) (Om.addr_of gc a));
      let addr0 = Om.addr_of gc a in
      let ow = Smp.owin_create ctx ~comm a in
      let win = Smp.owin_win ow in
      Alcotest.(check int) "conditional pin registered" 1
        (VGc.conditional_pin_count gc);
      (* Open an epoch with traffic in flight toward the peer. *)
      let update = Bytes.create (4 * elems) in
      for i = 0 to elems - 1 do
        Bytes.set_int32_le update (4 * i) (Int32.of_int (((1 - r) * 100) + i))
      done;
      Rma.put win ~target:(1 - r) ~target_off:0 update ~off:0
        ~len:(Bytes.length update);
      let digest0 = payload_digest gc a in
      (* Full collection mid-epoch: the put is still deferred, so the
         window must be bit-identical and unmoved. *)
      VGc.collect gc ~full:true;
      Alcotest.(check int) "window buffer unmoved" addr0 (Om.addr_of gc a);
      Alcotest.(check string) "window contents digest-stable" digest0
        (payload_digest gc a);
      Rma.win_fence win;
      (* The peer's put landed in the managed object, in place. *)
      for i = 0 to elems - 1 do
        Alcotest.(check int)
          (Printf.sprintf "elem %d" i)
          ((r * 100) + i)
          (Om.get_elem_int gc a i)
      done;
      Smp.owin_free ow;
      Alcotest.(check bool) "window retired" false (Rma.exposed win);
      VGc.collect gc ~full:true;
      Alcotest.(check int) "pin dropped after free" 0
        (VGc.conditional_pin_count gc);
      no_violations "pin table empty" (Invariant.pin_table ~rank:r gc))

(* The sticky-pin policies must leave no pin behind either. *)
let test_owin_sticky_policies_unpin () =
  List.iter
    (fun policy ->
      let config = { World.default_config with policy } in
      let w = World.create ~config ~n:2 () in
      World.run w (fun ctx ->
          let gc = World.gc ctx in
          let r = World.rank ctx in
          let comm = Smp.comm_world ctx in
          let a = Om.alloc_array gc (Types.Eprim Types.I4) 16 in
          let ow = Smp.owin_create ctx ~comm a in
          Rma.put (Smp.owin_win ow) ~target:(1 - r) ~target_off:0
            (Bytes.make 8 'p') ~off:0 ~len:8;
          Rma.win_fence (Smp.owin_win ow);
          Smp.owin_free ow;
          VGc.collect gc ~full:true;
          no_violations
            (Motor.Pinning.policy_name policy ^ ": pin table empty")
            (Invariant.pin_table ~rank:r gc)))
    [ Pin.Always_pin; Pin.Boundary_check ]

let () =
  Alcotest.run "rma"
    [
      ( "cache",
        [
          Alcotest.test_case "hit/miss/overlap" `Quick test_cache_hit_miss;
          Alcotest.test_case "lru eviction + re-registration" `Quick
            test_cache_lru_eviction;
          Alcotest.test_case "multi-victim eviction" `Quick
            test_cache_multi_eviction;
          Alcotest.test_case "pinning blocks eviction" `Quick
            test_cache_pinning;
          Alcotest.test_case "pin promotes cached entry" `Quick
            test_cache_pin_hit_promotes;
          Alcotest.test_case "oversized region" `Quick
            test_cache_oversized_region;
        ] );
      ( "fence",
        [
          Alcotest.test_case "put/get ring, 2-9 ranks" `Quick
            test_fence_ring_sizes;
          Alcotest.test_case "self put" `Quick test_fence_self_put;
          Alcotest.test_case "accumulate oracles, 2-9 ranks" `Quick
            test_accumulate_fence_sizes;
        ] );
      ( "lock",
        [
          Alcotest.test_case "exclusive slots + shared get, 2-9 ranks"
            `Quick test_lock_slots_sizes;
          Alcotest.test_case "accumulate via lock + fence, 2-9 ranks" `Quick
            test_accumulate_lock_sizes;
        ] );
      ( "epochs",
        [
          Alcotest.test_case "free with unfenced put" `Quick
            test_free_with_unfenced_put;
          Alcotest.test_case "free with held lock" `Quick
            test_free_with_held_lock;
          Alcotest.test_case "freed window rejects ops" `Quick
            test_freed_window_rejects_ops;
          Alcotest.test_case "out-of-range put" `Quick test_out_of_range_put;
        ] );
      ( "rdma",
        [
          Alcotest.test_case "registration amortized" `Quick
            test_rdma_registration_amortized;
          Alcotest.test_case "read variant below crossover" `Quick
            test_rdma_read_variant_below_crossover;
        ] );
      ( "faults",
        [ Alcotest.test_case "rendezvous under loss" `Quick test_rma_under_faults ] );
      ( "managed",
        [
          Alcotest.test_case "full collection during open epoch" `Quick
            test_owin_survives_full_collection;
          Alcotest.test_case "sticky policies unpin at free" `Quick
            test_owin_sticky_policies_unpin;
        ] );
    ]
