(* Cross-cutting property tests: typed storage roundtrips over every
   primitive type (including boundary values), serializer idempotence,
   agreement between the two visited structures on arbitrary graphs,
   corpus trace-file round-trips and checkpoint save/restore. *)

module Om = Vm.Object_model
module Gc = Vm.Gc
module Classes = Vm.Classes
module Types = Vm.Types
module Runtime = Vm.Runtime
module Ser = Motor.Serializer
module Corpus = Check.Corpus
module Ckpt = Motor.Checkpoint

(* Representative and boundary values per primitive type. *)
let int_values_for = function
  | Types.I1 -> [ -128; -1; 0; 1; 127 ]
  | Types.I2 -> [ -32768; -1; 0; 255; 32767 ]
  | Types.I4 -> [ Int32.to_int Int32.min_int; -1; 0; 65536; Int32.to_int Int32.max_int ]
  | Types.I8 -> [ min_int / 2; -1; 0; 1; max_int / 2 ]
  | Types.Bool -> [ 0; 1; 255 ]
  | Types.Char -> [ 0; 65; 0xffff ]
  | Types.R4 | Types.R8 -> []

(* What the store-then-load of [v] must produce, given each type's width
   and signedness conventions. *)
let canonical prim v =
  match prim with
  | Types.I1 ->
      let b = v land 0xff in
      if b > 127 then b - 256 else b
  | Types.I2 ->
      let b = v land 0xffff in
      if b > 32767 then b - 65536 else b
  | Types.I4 -> Int32.to_int (Int32.of_int v)
  | Types.I8 -> v
  | Types.Bool -> v land 0xff
  | Types.Char -> v land 0xffff
  | Types.R4 | Types.R8 -> v

let all_int_prims = [ Types.I1; Types.I2; Types.I4; Types.I8; Types.Bool; Types.Char ]

let prop_field_roundtrip_all_prims =
  QCheck.Test.make ~name:"every integral field type roundtrips its range"
    ~count:50
    QCheck.(int_range 0 1000)
    (fun salt ->
      let rt = Runtime.create () in
      let gc = rt.Runtime.gc in
      let mt =
        Classes.define rt.Runtime.registry ~name:"AllPrims"
          ~fields:
            (List.mapi
               (fun i p -> (Printf.sprintf "f%d" i, Types.Prim p, false))
               all_int_prims)
          ()
      in
      let o = Om.alloc_instance gc mt in
      List.for_all
        (fun (i, p) ->
          let fd = Classes.field_by_index mt i in
          List.for_all
            (fun v ->
              let v = v + (salt * 0) in
              Om.set_int gc o fd v;
              Om.get_int gc o fd = canonical p v)
            (int_values_for p))
        (List.mapi (fun i p -> (i, p)) all_int_prims))

let prop_elem_roundtrip_all_prims =
  QCheck.Test.make ~name:"every integral element type roundtrips its range"
    ~count:30
    QCheck.(int_range 1 16)
    (fun len ->
      let rt = Runtime.create () in
      let gc = rt.Runtime.gc in
      List.for_all
        (fun p ->
          let a = Om.alloc_array gc (Types.Eprim p) len in
          List.for_all
            (fun v ->
              let i = abs v mod len in
              Om.set_elem_int gc a i v;
              Om.get_elem_int gc a i = canonical p v)
            (int_values_for p))
        all_int_prims)

let prop_float_fields_roundtrip =
  QCheck.Test.make ~name:"float fields roundtrip (r8 exact, r4 narrowed)"
    ~count:100
    QCheck.(float_range (-1e30) 1e30)
    (fun v ->
      let rt = Runtime.create () in
      let gc = rt.Runtime.gc in
      let mt =
        Classes.define rt.Runtime.registry ~name:"Floats"
          ~fields:
            [ ("s", Types.Prim Types.R4, false); ("d", Types.Prim Types.R8, false) ]
          ()
      in
      let o = Om.alloc_instance gc mt in
      let fs = Classes.field mt "s" and fd = Classes.field mt "d" in
      Om.set_float gc o fd v;
      Om.set_float gc o fs v;
      Om.get_float gc o fd = v
      && Om.get_float gc o fs = Int32.float_of_bits (Int32.bits_of_float v))

(* Random-graph machinery (structure shared with test_robustness, but
   typed differently enough to keep local). *)
let graph_class registry =
  match Classes.find_by_name registry "PNode" with
  | Some mt -> mt
  | None ->
      let id = Classes.declare registry ~name:"PNode" in
      Classes.complete registry id ~transportable:true
        ~fields:
          [
            ("a", Types.Ref id, true);
            ("b", Types.Ref id, true);
            ("v", Types.Prim Types.I4, false);
          ]
        ()

let build gc registry ~n ~seed =
  let mt = graph_class registry in
  let fa = Classes.field mt "a" and fb = Classes.field mt "b" in
  let fv = Classes.field mt "v" in
  let nodes =
    Array.init n (fun i ->
        let o = Om.alloc_instance gc mt in
        Om.set_int gc o fv ((seed * 17) + i);
        o)
  in
  Array.iteri
    (fun i o ->
      if (i + seed) mod 5 <> 0 then
        Om.set_ref gc o fa (Some nodes.(((i * 3) + seed) mod n));
      if (i + seed) mod 7 <> 0 then
        Om.set_ref gc o fb (Some nodes.(((i * 11) + (2 * seed)) mod n)))
    nodes;
  nodes.(0)

let prop_serializer_idempotent =
  QCheck.Test.make
    ~name:"serialize . deserialize . serialize is byte-identical" ~count:50
    QCheck.(pair (int_range 1 25) (int_range 0 40))
    (fun (n, seed) ->
      let rt = Runtime.create () in
      let gc = rt.Runtime.gc in
      let root = build gc rt.Runtime.registry ~n ~seed in
      let once = Ser.serialize gc ~visited:Ser.Hashed root in
      let copy = Ser.deserialize gc once in
      let twice = Ser.serialize gc ~visited:Ser.Hashed copy in
      Bytes.equal once twice)

let prop_visited_strategies_agree_on_graphs =
  QCheck.Test.make
    ~name:"linear and hashed visited structures serialize identically"
    ~count:50
    QCheck.(pair (int_range 1 25) (int_range 0 40))
    (fun (n, seed) ->
      let rt = Runtime.create () in
      let gc = rt.Runtime.gc in
      let root = build gc rt.Runtime.registry ~n ~seed in
      Bytes.equal
        (Ser.serialize gc ~visited:Ser.Linear root)
        (Ser.serialize gc ~visited:Ser.Hashed root))

(* Mixed-transportability round-trip: graphs with cycles, shared
   substructure, per-node data arrays and a non-transportable reference
   field must decode to a graph {e isomorphic} to the original with the
   non-transportable edges cut (Section 4.2.2) — same shape, same
   sharing (a shared array stays one array, a cycle stays a cycle), same
   payloads. QCheck prints the failing (n, seed) pair, which rebuilds
   the graph deterministically. *)
let mixed_class registry =
  match Classes.find_by_name registry "MixNode" with
  | Some mt -> mt
  | None ->
      let id = Classes.declare registry ~name:"MixNode" in
      let arr = Classes.array_class registry (Types.Eprim Types.I1) in
      Classes.complete registry id ~transportable:true
        ~fields:
          [
            ("t", Types.Ref id, true);
            ("u", Types.Ref id, false);
            (* never travels: must decode as null *)
            ("d", Types.Ref arr.Classes.c_id, true);
            ("v", Types.Prim Types.I4, false);
          ]
        ()

let build_mixed gc registry ~n ~seed =
  let mt = mixed_class registry in
  let ft = Classes.field mt "t" and fu = Classes.field mt "u" in
  let fd = Classes.field mt "d" and fv = Classes.field mt "v" in
  let state = ref (seed + 1) in
  let next m =
    state := ((!state * 1103515245) + 12345) land 0x3fffffff;
    !state mod m
  in
  let shared = Om.alloc_array gc (Types.Eprim Types.I1) 6 in
  for i = 0 to 5 do
    Om.set_elem_int gc shared i ((seed + (i * 9)) land 0xff)
  done;
  let nodes =
    Array.init n (fun i ->
        let o = Om.alloc_instance gc mt in
        Om.set_int gc o fv ((seed * 31) + i);
        o)
  in
  Array.iter
    (fun o ->
      (* Random t/u edges produce self-loops, cycles and sharing. *)
      if next 4 > 0 then Om.set_ref gc o ft (Some nodes.(next n));
      if next 3 > 0 then Om.set_ref gc o fu (Some nodes.(next n));
      match next 3 with
      | 0 -> Om.set_ref gc o fd (Some shared)
      | 1 ->
          let len = 1 + next 8 in
          let a = Om.alloc_array gc (Types.Eprim Types.I1) len in
          for j = 0 to len - 1 do
            Om.set_elem_int gc a j (next 256)
          done;
          Om.set_ref gc o fd (Some a);
          Om.free gc a
      | _ -> ())
    nodes;
  Om.free gc shared;
  Array.iteri (fun i o -> if i > 0 then Om.free gc o) nodes;
  (mt, nodes.(0))

(* Parallel walk with a bijective correspondence table: original object
   X must always map to the same copy X' and vice versa, so shape and
   sharing are both checked. No allocation happens during the walk
   (handles aside), so payload addresses are stable identities. *)
let isomorphic gc mt root copy =
  let ft = Classes.field mt "t" and fu = Classes.field mt "u" in
  let fd = Classes.field mt "d" and fv = Classes.field mt "v" in
  let fwd = Hashtbl.create 64 and bwd = Hashtbl.create 64 in
  let addr o = fst (Om.payload_region gc o) in
  let pair ao ac =
    match (Hashtbl.find_opt fwd ao, Hashtbl.find_opt bwd ac) with
    | Some x, Some y -> if x = ac && y = ao then `Seen else `Mismatch
    | None, None ->
        Hashtbl.replace fwd ao ac;
        Hashtbl.replace bwd ac ao;
        `Fresh
    | _ -> `Mismatch
  in
  let data_equal a b =
    let la = Om.array_length gc a in
    la = Om.array_length gc b
    &&
    let ok = ref true in
    for j = 0 to la - 1 do
      if Om.get_elem_int gc a j <> Om.get_elem_int gc b j then ok := false
    done;
    !ok
  in
  let both f o c k =
    match (Om.get_ref gc o f, Om.get_ref gc c f) with
    | None, None -> true
    | Some a, Some b ->
        let r = k a b in
        Om.free gc a;
        Om.free gc b;
        r
    | Some a, None ->
        Om.free gc a;
        false
    | None, Some b ->
        Om.free gc b;
        false
  in
  let rec go o c =
    match pair (addr o) (addr c) with
    | `Mismatch -> false
    | `Seen -> true
    | `Fresh ->
        Om.get_int gc o fv = Om.get_int gc c fv
        && (match Om.get_ref gc c fu with
           | None -> true
           | Some x ->
               Om.free gc x;
               false)
        && both fd o c (fun a b ->
               match pair (addr a) (addr b) with
               | `Mismatch -> false
               | `Seen -> true
               | `Fresh -> data_equal a b)
        && both ft o c go
  in
  go root copy

let prop_mixed_transport_roundtrip_isomorphic =
  QCheck.Test.make
    ~name:
      "mixed-transportability graphs decode isomorphic (untransportable \
       edges cut)"
    ~count:100
    QCheck.(pair (int_range 1 24) (int_range 0 9999))
    (fun (n, seed) ->
      let rt = Runtime.create () in
      let gc = rt.Runtime.gc in
      let mt, root = build_mixed gc rt.Runtime.registry ~n ~seed in
      let data = Ser.serialize gc ~visited:Ser.Hashed root in
      let copy = Ser.deserialize gc data in
      isomorphic gc mt root copy)

let prop_mixed_transport_strategies_agree =
  QCheck.Test.make
    ~name:"visited strategies agree on mixed-transportability graphs"
    ~count:50
    QCheck.(pair (int_range 1 24) (int_range 0 9999))
    (fun (n, seed) ->
      let rt = Runtime.create () in
      let gc = rt.Runtime.gc in
      let _, root = build_mixed gc rt.Runtime.registry ~n ~seed in
      Bytes.equal
        (Ser.serialize gc ~visited:Ser.Linear root)
        (Ser.serialize gc ~visited:Ser.Hashed root))

let prop_split_parts_cover_disjointly =
  QCheck.Test.make ~name:"split parts partition the element index space"
    ~count:50
    QCheck.(pair (int_range 1 64) (int_range 1 9))
    (fun (len, parts) ->
      let parts = min parts len in
      let rt = Runtime.create () in
      let gc = rt.Runtime.gc in
      let mt = graph_class rt.Runtime.registry in
      let fv = Classes.field mt "v" in
      let arr = Om.alloc_array gc (Types.Eref mt.Classes.c_id) len in
      for i = 0 to len - 1 do
        let o = Om.alloc_instance gc mt in
        Om.set_int gc o fv i;
        Om.set_elem_ref gc arr i (Some o);
        Om.free gc o
      done;
      let segs = Ser.split gc ~visited:Ser.Hashed arr ~parts in
      (* Collect the v values across all deserialized segments. *)
      let seen = Hashtbl.create 64 in
      Array.iter
        (fun s ->
          let part = Ser.deserialize gc s in
          for i = 0 to Om.array_length gc part - 1 do
            let o = Option.get (Om.get_elem_ref gc part i) in
            let v = Om.get_int gc o fv in
            if Hashtbl.mem seen v then failwith "duplicate element"
            else Hashtbl.replace seen v ()
          done)
        segs;
      Hashtbl.length seen = len)

(* --- Communicator and group algebra ------------------------------- *)

(* The sparse (descriptor) communicator representation must be
   observationally equal to the dense model: a materialized member array
   with linear-scan lookups. *)
module Mcomm = Mpi_core.Comm
module Mgroup = Mpi_core.Group

let model_rank_of arr w =
  let n = Array.length arr in
  let rec go i = if i >= n then None else if arr.(i) = w then Some i else go (i + 1) in
  go 0

let comm_matches_model c arr =
  let n = Array.length arr in
  Mcomm.size c = n
  && Mcomm.members c = arr
  && (let ok = ref true in
      for i = 0 to n - 1 do
        if Mcomm.world_rank_of c i <> arr.(i) then ok := false
      done;
      !ok)
  && (let lo = arr.(0) - 2 and hi = arr.(n - 1) + 2 in
      let ok = ref true in
      for w = max 0 lo to hi do
        if Mcomm.comm_rank_of c w <> model_rank_of arr w then ok := false
      done;
      !ok)

let prop_sparse_comm_equals_dense_model =
  QCheck.Test.make
    ~name:"range descriptor comms answer exactly like the dense array"
    ~count:200
    QCheck.(triple (int_range 0 50) (int_range 1 7) (int_range 1 40))
    (fun (start, step, count) ->
      let arr = Array.init count (fun i -> start + (i * step)) in
      comm_matches_model (Mcomm.range ~ctx:0 ~step ~start ~count ()) arr
      && comm_matches_model (Mcomm.make ~ctx:0 ~members:arr) arr)

(* Distinct positive ranks in arbitrary order (so most draws do not form
   an arithmetic progression and stay enumerated). *)
let gen_rankset =
  let open QCheck.Gen in
  map
    (fun (h, t) ->
      let seen = Hashtbl.create 16 in
      List.filter
        (fun r ->
          if Hashtbl.mem seen r then false
          else begin
            Hashtbl.add seen r ();
            true
          end)
        (h :: t))
    (pair (int_range 0 60) (list_size (int_range 0 24) (int_range 0 60)))

let arb_rankset =
  QCheck.make gen_rankset
    ~print:(fun l -> String.concat ";" (List.map string_of_int l))

let prop_enum_comm_equals_dense_model =
  QCheck.Test.make
    ~name:"enumerated comms answer exactly like the dense array" ~count:200
    arb_rankset
    (fun ranks ->
      let arr = Array.of_list ranks in
      comm_matches_model (Mcomm.make ~ctx:0 ~members:arr) arr)

(* Group set algebra against the obvious list-set model (MPI order
   conventions: left operand's order first). *)
let prop_group_algebra_matches_model =
  QCheck.Test.make ~name:"group algebra matches the list-set model"
    ~count:300
    QCheck.(pair arb_rankset arb_rankset)
    (fun (la, lb) ->
      let ga = Mgroup.of_ranks la and gb = Mgroup.of_ranks lb in
      let l g = Array.to_list (Mgroup.members g) in
      let model_union = la @ List.filter (fun r -> not (List.mem r la)) lb in
      let model_inter = List.filter (fun r -> List.mem r lb) la in
      let model_diff = List.filter (fun r -> not (List.mem r lb)) la in
      l (Mgroup.union ga gb) = model_union
      && l (Mgroup.intersection ga gb) = model_inter
      && l (Mgroup.difference ga gb) = model_diff
      (* Derived identities the model implies. *)
      && Mgroup.similar (Mgroup.union ga gb) (Mgroup.union gb ga)
      && Mgroup.equal (Mgroup.intersection ga ga) ga
      && Mgroup.size (Mgroup.difference ga ga) = 0
      && List.for_all
           (fun r ->
             Mgroup.rank_of (Mgroup.union ga gb) r <> None
             = (List.mem r la || List.mem r lb))
           (la @ lb))

let prop_group_incl_excl_matches_model =
  QCheck.Test.make ~name:"incl/excl match the positional model" ~count:300
    QCheck.(pair arb_rankset (list_of_size Gen.(int_range 0 8) (int_range 0 100)))
    (fun (la, picks) ->
      let ga = Mgroup.of_ranks la in
      let n = List.length la in
      let picks =
        let seen = Hashtbl.create 8 in
        List.filter
          (fun i ->
            i < n
            &&
            if Hashtbl.mem seen i then false
            else begin
              Hashtbl.add seen i ();
              true
            end)
          picks
      in
      let arr = Array.of_list la in
      let l g = Array.to_list (Mgroup.members g) in
      l (Mgroup.incl ga picks) = List.map (fun i -> arr.(i)) picks
      && l (Mgroup.excl ga picks)
         = List.filteri (fun i _ -> not (List.mem i picks)) la)

let prop_group_of_range_comm_stays_sparse =
  QCheck.Test.make
    ~name:"group of a descriptor comm keeps the O(1) representation"
    ~count:100
    QCheck.(triple (int_range 0 1_000_000) (int_range 1 64) (int_range 1 65536))
    (fun (start, step, count) ->
      let c = Mcomm.range ~ctx:0 ~step ~start ~count () in
      let g = Mgroup.of_comm c in
      Mgroup.is_range g
      && Mgroup.size g = count
      && Mgroup.world_rank g (count - 1) = start + ((count - 1) * step)
      && Mgroup.rank_of g (start + (step * (count / 2))) = Some (count / 2))

(* --- Corpus trace files ------------------------------------------- *)

(* The parser trims every line and drops blank ones, so only trim-stable,
   newline-free fields round-trip — which is all the explorer ever
   writes. The generators stay inside that contract. *)
let gen_entry =
  let open QCheck.Gen in
  let ident =
    string_size
      ~gen:(oneofl [ 'a'; 'g'; 'k'; 'r'; 'z'; '0'; '7'; '_'; '-' ])
      (int_range 1 12)
  in
  let note =
    map String.trim
      (string_size
         ~gen:(oneofl [ 's'; 'e'; 'd'; '7'; ' '; '('; ')'; '='; ',' ])
         (int_range 0 24))
  in
  map
    (fun (w, (ef, (n, (f, ds)))) ->
      {
        Corpus.c_workload = w;
        c_expect = (if ef then Corpus.Must_fail else Corpus.Must_pass);
        c_note = n;
        c_fault = f;
        c_decisions = ds;
      })
    (pair ident
       (pair bool
          (pair note
             (pair
                (opt (int_range 0 10_000))
                (list_size (int_range 0 40) (int_range 0 64))))))

let arb_entry = QCheck.make gen_entry ~print:Corpus.to_string

let prop_corpus_round_trip =
  QCheck.Test.make ~name:"corpus entries survive to_string/of_string"
    ~count:200 arb_entry
    (fun e -> Corpus.of_string (Corpus.to_string e) = e)

(* Six ways to damage a well-formed trace; each must be rejected with a
   "corpus:" diagnostic, never accepted or crashed on. *)
let mutate k text =
  let lines = String.split_on_char '\n' text in
  let without pfx =
    List.filter (fun l -> not (String.starts_with ~prefix:pfx l)) lines
  in
  match k with
  | 0 -> String.concat "\n" (List.tl lines) (* magic header gone *)
  | 1 ->
      String.concat "\n"
        (List.map
           (fun l ->
             if String.starts_with ~prefix:"expect " l then "expect maybe"
             else l)
           lines)
  | 2 -> text ^ "fault zz\n"
  | 3 -> text ^ "decisions 1 x 2\n" (* later line wins, and is malformed *)
  | 4 -> String.concat "\n" (without "decisions")
  | _ -> String.concat "\n" (without "workload")

let prop_corpus_rejects_mutants =
  QCheck.Test.make
    ~name:"damaged corpus files fail with a corpus: diagnostic" ~count:200
    QCheck.(pair arb_entry (int_range 0 5))
    (fun (e, k) ->
      match Corpus.of_string (mutate k (Corpus.to_string e)) with
      | exception Failure msg -> String.starts_with ~prefix:"corpus:" msg
      | _ -> false)

(* --- Checkpoint round-trip ---------------------------------------- *)

(* Save, restore into the same heap, save again: the rebuilt graph must
   re-serialize to the byte-identical image (digest-equal), and restore
   must hand back the step the image was taken at. Runs over the same
   random graphs as the serializer properties, inside a 1-rank world so
   the device state is quiescent (the only kind of image the store
   accepts). *)
let prop_checkpoint_round_trip =
  QCheck.Test.make
    ~name:"checkpoint restore rebuilds a digest-identical heap" ~count:30
    QCheck.(pair (int_range 1 25) (int_range 0 40))
    (fun (n, seed) ->
      let w = Motor.World.create ~n:1 () in
      let ok = ref false in
      Motor.World.run w (fun ctx ->
          let gc = Motor.World.gc ctx in
          let root = build gc (Motor.World.registry ctx) ~n ~seed in
          let store = Ckpt.create_store () in
          let img = Ckpt.save store ctx ~step:3 root in
          let copy, step = Ckpt.restore store ctx in
          let again = Ckpt.save store ctx ~step:4 copy in
          ok :=
            step = 3
            && String.equal img.Ckpt.i_digest (Ckpt.digest img.Ckpt.i_data)
            && String.equal img.Ckpt.i_digest again.Ckpt.i_digest;
          Om.free gc copy;
          Om.free gc root);
      !ok)

(* --- One-sided RMA ------------------------------------------------- *)

(* The three RMA properties run real multi-rank worlds, so their counts
   stay modest; every run is rebuilt deterministically from the printed
   (n, seed) pair. *)
module Rma = Mpi_core.Rma
module Mpi = Mpi_core.Mpi

(* One LCG per (seed, rank): the property and the in-world body derive
   the same random layout from it independently. *)
let lcg seed =
  let state = ref ((seed * 2) + 1) in
  fun m ->
    state := ((!state * 1103515245) + 12345) land 0x3fffffff;
    !state mod m

let rma_wlen = 96
let rma_init ~rank = Bytes.init rma_wlen (fun i -> Char.chr (((rank * 13) + i + 3) land 0xff))

(* The random layout rank [r] issues: puts first, then gets, each with
   arbitrary (target, offset, length) — including self-targeted and
   overlapping segments. *)
let rma_layout ~n ~seed ~rank =
  let next = lcg ((seed * 31) + rank) in
  let seg () =
    let len = 1 + next 24 in
    (next n, next (rma_wlen - len + 1), len)
  in
  let puts =
    List.init
      (1 + next 3)
      (fun _ ->
        let t, off, len = seg () in
        (t, off, Bytes.init len (fun _ -> Char.chr (next 256))))
  in
  let gets = List.init (1 + next 3) (fun _ -> seg ()) in
  (puts, gets)

(* Put/get round-trip isomorphism: after the closing fence, every get of
   any segment of any window must read exactly what the model — plain
   byte arrays mutated in origin-rank order, then issue order, the order
   [win_fence] commits — says that window holds. *)
let prop_rma_put_get_matches_model =
  QCheck.Test.make ~name:"put/get round-trips match the flat-array model"
    ~count:25
    QCheck.(pair (int_range 2 4) (int_range 0 9999))
    (fun (n, seed) ->
      let model = Array.init n (fun r -> rma_init ~rank:r) in
      for r = 0 to n - 1 do
        let puts, _ = rma_layout ~n ~seed ~rank:r in
        List.iter
          (fun (t, off, data) ->
            Bytes.blit data 0 model.(t) off (Bytes.length data))
          puts
      done;
      let ok = Array.make n false in
      ignore
        (Mpi.run ~n (fun p ->
             let r = Mpi.rank p in
             let comm = Mpi.comm_world (Mpi.world_of p) in
             let mine = rma_init ~rank:r in
             let win = Rma.win_create p ~comm mine in
             let puts, gets = rma_layout ~n ~seed ~rank:r in
             List.iter
               (fun (t, off, data) ->
                 Rma.put win ~target:t ~target_off:off data ~off:0
                   ~len:(Bytes.length data))
               puts;
             Rma.win_fence win;
             let fine = ref (Bytes.equal mine model.(r)) in
             List.iter
               (fun (t, off, len) ->
                 let buf = Bytes.create len in
                 Rma.get win ~target:t ~target_off:off buf ~off:0 ~len;
                 if not (Bytes.equal buf (Bytes.sub model.(t) off len)) then
                   fine := false)
               gets;
             Rma.win_fence win;
             Rma.win_free win;
             ok.(r) <- !fine));
      Array.for_all Fun.id ok)

(* Accumulate order-insensitivity: for a commutative-associative
   operator the fence's origin-rank fold must agree with the same
   contributions folded in an arbitrary (seed-derived) permutation. *)
let arb_commutative_op =
  QCheck.make
    QCheck.Gen.(oneofl [ Rma.Sum; Rma.Prod; Rma.Min; Rma.Max; Rma.Bxor ])
    ~print:(function
      | Rma.Sum -> "Sum"
      | Rma.Prod -> "Prod"
      | Rma.Min -> "Min"
      | Rma.Max -> "Max"
      | Rma.Bxor -> "Bxor"
      | Rma.Replace -> "Replace"
      | Rma.Matmul -> "Matmul")

let rma_lanes = 4

let rma_contribs ~n ~seed =
  List.concat
    (List.init n (fun r ->
         let next = lcg ((seed * 17) + r) in
         List.init
           (1 + next 3)
           (fun _ ->
             let lane = next rma_lanes in
             let v = Int64.of_int (next 1_000_000 - 500_000) in
             (r, lane, v))))

let prop_rma_accumulate_order_insensitive =
  QCheck.Test.make
    ~name:"commutative accumulate is insensitive to contribution order"
    ~count:25
    QCheck.(triple (int_range 2 4) (int_range 0 9999) arb_commutative_op)
    (fun (n, seed, op) ->
      let f =
        match op with
        | Rma.Sum -> Int64.add
        | Rma.Prod -> Int64.mul
        | Rma.Min -> Int64.min
        | Rma.Max -> Int64.max
        | Rma.Bxor -> Int64.logxor
        | _ -> assert false
      in
      let base = Array.init rma_lanes (fun i -> Int64.of_int ((seed * 7) + i)) in
      (* Fold the model in a seed-shuffled order, not rank order. *)
      let contribs = rma_contribs ~n ~seed in
      let shuffled =
        let next = lcg (seed + 99) in
        List.map snd
          (List.sort compare (List.map (fun c -> (next 1_000_000, c)) contribs))
      in
      let model = Array.copy base in
      List.iter (fun (_, lane, v) -> model.(lane) <- f model.(lane) v) shuffled;
      let ok = ref false in
      ignore
        (Mpi.run ~n (fun p ->
             let r = Mpi.rank p in
             let comm = Mpi.comm_world (Mpi.world_of p) in
             let mine = Bytes.create (8 * rma_lanes) in
             Array.iteri (fun i v -> Bytes.set_int64_le mine (8 * i) v) base;
             let win = Rma.win_create p ~comm mine in
             List.iter
               (fun (o, lane, v) ->
                 if o = r then begin
                   let c = Bytes.create 8 in
                   Bytes.set_int64_le c 0 v;
                   Rma.accumulate win ~target:0 ~target_off:(8 * lane) ~op c
                     ~off:0 ~len:8
                 end)
               contribs;
             Rma.win_fence win;
             if r = 0 then
               ok :=
                 Array.for_all Fun.id
                   (Array.init rma_lanes (fun i ->
                        Bytes.get_int64_le mine (8 * i) = model.(i)));
             Rma.win_free win));
      !ok)

(* --- Registration cache vs naive model ----------------------------- *)

module RCache = Mpi_core.Rdma_channel.Cache

(* The reference model: a bare association list scanned linearly, stamps
   recomputed from an explicit clock — no shared structure with the
   implementation beyond the specification. *)
module Cache_model = struct
  type entry = {
    m_addr : int;
    m_len : int;
    mutable m_pins : int;
    mutable m_stamp : int;
  }

  type t = {
    m_capacity : int;
    mutable m_entries : entry list;  (* newest insertion first *)
    mutable m_clock : int;
    mutable m_hits : int;
    mutable m_misses : int;
    mutable m_evictions : int;
  }

  let create capacity =
    { m_capacity = capacity; m_entries = []; m_clock = 0; m_hits = 0;
      m_misses = 0; m_evictions = 0 }

  let covering t ~addr ~len =
    List.find_opt
      (fun e -> e.m_addr <= addr && addr + len <= e.m_addr + e.m_len)
      t.m_entries

  let bytes t = List.fold_left (fun a e -> a + e.m_len) 0 t.m_entries

  let touch t e =
    t.m_clock <- t.m_clock + 1;
    e.m_stamp <- t.m_clock

  let rec evict t need acc =
    if bytes t + need <= t.m_capacity then List.rev acc
    else
      match
        List.sort
          (fun a b -> compare a.m_stamp b.m_stamp)
          (List.filter (fun e -> e.m_pins = 0) t.m_entries)
      with
      | [] -> List.rev acc
      | victim :: _ ->
          t.m_entries <- List.filter (fun e -> e != victim) t.m_entries;
          t.m_evictions <- t.m_evictions + 1;
          evict t need ((victim.m_addr, victim.m_len) :: acc)

  let insert t ~addr ~len ~pins =
    let evicted = evict t len [] in
    let e = { m_addr = addr; m_len = len; m_pins = pins; m_stamp = 0 } in
    touch t e;
    t.m_entries <- e :: t.m_entries;
    evicted

  let access t ~addr ~len =
    match covering t ~addr ~len with
    | Some e ->
        t.m_hits <- t.m_hits + 1;
        touch t e;
        `Hit
    | None ->
        t.m_misses <- t.m_misses + 1;
        `Miss (insert t ~addr ~len ~pins:0)

  let pin t ~addr ~len =
    match covering t ~addr ~len with
    | Some e ->
        t.m_hits <- t.m_hits + 1;
        touch t e;
        e.m_pins <- e.m_pins + 1;
        `Hit
    | None ->
        t.m_misses <- t.m_misses + 1;
        `Miss (insert t ~addr ~len ~pins:1)

  let unpin t ~addr ~len =
    match
      List.find_opt
        (fun e ->
          e.m_pins > 0 && e.m_addr <= addr && addr + len <= e.m_addr + e.m_len)
        t.m_entries
    with
    | Some e ->
        e.m_pins <- e.m_pins - 1;
        true
    | None -> false

  let pinned_bytes t =
    List.fold_left
      (fun a e -> if e.m_pins > 0 then a + e.m_len else a)
      0 t.m_entries
end

type cache_op = Access of int * int | Pin of int * int | Unpin of int * int

let gen_cache_ops =
  let open QCheck.Gen in
  let region = pair (int_range 0 400) (int_range 1 128) in
  list_size (int_range 1 60)
    (frequency
       [
         (5, map (fun (a, l) -> Access (a, l)) region);
         (2, map (fun (a, l) -> Pin (a, l)) region);
         (2, map (fun (a, l) -> Unpin (a, l)) region);
       ])

let arb_cache_ops =
  QCheck.make
    QCheck.Gen.(pair (int_range 64 512) gen_cache_ops)
    ~print:(fun (cap, ops) ->
      Printf.sprintf "capacity=%d [%s]" cap
        (String.concat "; "
           (List.map
              (function
                | Access (a, l) -> Printf.sprintf "access(%d,%d)" a l
                | Pin (a, l) -> Printf.sprintf "pin(%d,%d)" a l
                | Unpin (a, l) -> Printf.sprintf "unpin(%d,%d)" a l)
              ops)))

let prop_cache_equals_naive_model =
  QCheck.Test.make
    ~name:"registration cache agrees with the naive list model" ~count:300
    arb_cache_ops
    (fun (capacity, ops) ->
      let c = RCache.create ~capacity_bytes:capacity () in
      let m = Cache_model.create capacity in
      List.for_all
        (fun op ->
          let step_ok =
            match op with
            | Access (addr, len) -> (
                match (RCache.access c ~addr ~len, Cache_model.access m ~addr ~len) with
                | RCache.Hit, `Hit -> true
                | RCache.Miss { evicted }, `Miss ev -> evicted = ev
                | _ -> false)
            | Pin (addr, len) -> (
                match (RCache.pin c ~addr ~len, Cache_model.pin m ~addr ~len) with
                | RCache.Hit, `Hit -> true
                | RCache.Miss { evicted }, `Miss ev -> evicted = ev
                | _ -> false)
            | Unpin (addr, len) -> (
                let model_ok = Cache_model.unpin m ~addr ~len in
                match RCache.unpin c ~addr ~len with
                | () -> model_ok
                | exception Invalid_argument _ -> not model_ok)
          in
          step_ok
          && RCache.entries c = List.length m.Cache_model.m_entries
          && RCache.registered_bytes c = Cache_model.bytes m
          && RCache.pinned_bytes c = Cache_model.pinned_bytes m
          && RCache.hits c = m.Cache_model.m_hits
          && RCache.misses c = m.Cache_model.m_misses
          && RCache.evictions c = m.Cache_model.m_evictions
          && List.for_all
               (fun probe ->
                 RCache.mem c ~addr:probe ~len:16
                 = Option.is_some (Cache_model.covering m ~addr:probe ~len:16))
               [ 0; 50; 100; 200; 300; 400 ])
        ops)

let () =
  Alcotest.run "properties"
    [
      ( "typed storage",
        [
          QCheck_alcotest.to_alcotest prop_field_roundtrip_all_prims;
          QCheck_alcotest.to_alcotest prop_elem_roundtrip_all_prims;
          QCheck_alcotest.to_alcotest prop_float_fields_roundtrip;
        ] );
      ( "serializer algebra",
        [
          QCheck_alcotest.to_alcotest prop_serializer_idempotent;
          QCheck_alcotest.to_alcotest
            prop_visited_strategies_agree_on_graphs;
          QCheck_alcotest.to_alcotest prop_split_parts_cover_disjointly;
          QCheck_alcotest.to_alcotest
            prop_mixed_transport_roundtrip_isomorphic;
          QCheck_alcotest.to_alcotest prop_mixed_transport_strategies_agree;
        ] );
      ( "communicator algebra",
        [
          QCheck_alcotest.to_alcotest prop_sparse_comm_equals_dense_model;
          QCheck_alcotest.to_alcotest prop_enum_comm_equals_dense_model;
          QCheck_alcotest.to_alcotest prop_group_algebra_matches_model;
          QCheck_alcotest.to_alcotest prop_group_incl_excl_matches_model;
          QCheck_alcotest.to_alcotest prop_group_of_range_comm_stays_sparse;
        ] );
      ( "corpus format",
        [
          QCheck_alcotest.to_alcotest prop_corpus_round_trip;
          QCheck_alcotest.to_alcotest prop_corpus_rejects_mutants;
        ] );
      ( "checkpoint",
        [ QCheck_alcotest.to_alcotest prop_checkpoint_round_trip ] );
      ( "one-sided rma",
        [
          QCheck_alcotest.to_alcotest prop_rma_put_get_matches_model;
          QCheck_alcotest.to_alcotest prop_rma_accumulate_order_insensitive;
          QCheck_alcotest.to_alcotest prop_cache_equals_naive_model;
        ] );
    ]
