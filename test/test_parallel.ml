(* Tests for real parallelism (DESIGN.md §15): rank fibers on OCaml 5
   domains. The load-bearing property is digest equality — a parallel
   run of a schedule-independent workload must produce byte-identical
   results to the cooperative run — plus the guard rails: parallel mode
   rejects everything that needs determinism or shared mutable state,
   and a parallel deadlock is detected and reported, never a hang. *)

module W = Harness.Workloads
module Mpi = Mpi_core.Mpi
module Spsc = Mpi_core.Spsc
module Trace = Mpi_core.Trace

(* ------------------------------------------------------------------ *)
(* SPSC ring                                                           *)
(* ------------------------------------------------------------------ *)

let test_spsc_fifo () =
  let q = Spsc.create ~capacity:8 in
  Alcotest.(check int) "capacity rounds to power of two" 8 (Spsc.capacity q);
  for i = 1 to 5 do
    Spsc.push q i
  done;
  Alcotest.(check int) "length" 5 (Spsc.length q);
  for i = 1 to 5 do
    Alcotest.(check (option int)) "fifo order" (Some i) (Spsc.pop q)
  done;
  Alcotest.(check (option int)) "empty" None (Spsc.pop q)

let test_spsc_full_and_wrap () =
  let q = Spsc.create ~capacity:3 in
  (* rounded up to 4 *)
  Alcotest.(check int) "rounded capacity" 4 (Spsc.capacity q);
  for i = 0 to 3 do
    Alcotest.(check bool) "push while space" true (Spsc.try_push q i)
  done;
  Alcotest.(check bool) "full ring rejects" false (Spsc.try_push q 99);
  Alcotest.(check (option int)) "pop frees a slot" (Some 0) (Spsc.pop q);
  Alcotest.(check bool) "push after pop" true (Spsc.try_push q 4);
  (* drain across the wrap point *)
  List.iter
    (fun expect ->
      Alcotest.(check (option int)) "wrap order" (Some expect) (Spsc.pop q))
    [ 1; 2; 3; 4 ]

let test_spsc_cross_domain () =
  let q = Spsc.create ~capacity:16 in
  let n = 10_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          Spsc.push q i
        done)
  in
  let sum = ref 0 and seen = ref 0 in
  while !seen < n do
    match Spsc.pop q with
    | Some v ->
        sum := !sum + v;
        incr seen
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  Alcotest.(check int) "all items, each once" (n * (n - 1) / 2) !sum

(* ------------------------------------------------------------------ *)
(* Digest equality: parallel == cooperative                            *)
(* ------------------------------------------------------------------ *)

let test_ring_digest_matches () =
  let base, _ = W.ring ~n:8 ~rounds:6 ~size:256 () in
  List.iter
    (fun d ->
      let got, w = W.ring ~parallel:d ~n:8 ~rounds:6 ~size:256 () in
      Alcotest.(check string)
        (Printf.sprintf "ring digest at %d domain(s)" d)
        base got;
      Alcotest.(check (option int))
        "world records its parallelism"
        (Some (min d 8))
        (Mpi.parallelism w))
    [ 1; 2; 4 ]

let test_allreduce_bytes_digest_matches () =
  let base, _ = W.allreduce_bytes ~n:8 ~rounds:4 ~size:512 () in
  List.iter
    (fun d ->
      let got, _ = W.allreduce_bytes ~parallel:d ~n:8 ~rounds:4 ~size:512 () in
      Alcotest.(check string)
        (Printf.sprintf "allreduce digest at %d domain(s)" d)
        base got)
    [ 2; 4 ]

let test_parallel_run_repeatable () =
  let a, _ = W.ring ~parallel:4 ~n:8 ~rounds:5 ~size:128 () in
  let b, _ = W.ring ~parallel:4 ~n:8 ~rounds:5 ~size:128 () in
  Alcotest.(check string) "two parallel runs agree" a b

(* Asking for more domains than the placement can use: ranks are placed
   per simulated node, so an explicit topology caps the useful domain
   count at its node count (and a flat world at the rank count). The
   request is clamped, not rejected — and the run still matches the
   cooperative digest. *)
let ring_digest ?topology ?parallel ~n () =
  let rounds = 4 and size = 128 in
  let finals = Array.make n Bytes.empty in
  let w =
    Mpi.run ?topology ?parallel ~n (fun p ->
        let comm = Mpi.comm_world (Mpi.world_of p) in
        let r = Mpi.rank p in
        let buf = Bytes.init size (fun i -> Char.chr ((r + i) land 0xff)) in
        for round = 0 to rounds - 1 do
          let dst = (r + 1) mod n and src = (r + n - 1) mod n in
          let incoming = Bytes.create size in
          let rr =
            Mpi.irecv p ~comm ~src ~tag:round
              (Mpi_core.Buffer_view.of_bytes incoming)
          in
          Mpi.send p ~comm ~dst ~tag:round (Mpi_core.Buffer_view.of_bytes buf);
          ignore (Mpi.wait p rr);
          Bytes.blit incoming 0 buf 0 size
        done;
        finals.(r) <- Bytes.copy buf)
  in
  let d = Digest.to_hex (Digest.bytes (Bytes.concat Bytes.empty (Array.to_list finals))) in
  (d, w)

let test_domains_clamped_to_nodes () =
  let topology = Simtime.Topology.make ~nodes:2 ~cores:4 in
  let base, _ = ring_digest ~topology ~n:8 () in
  (* 4 domains requested, but the 2-node placement can use only 2. *)
  let got, w = ring_digest ~topology ~parallel:4 ~n:8 () in
  Alcotest.(check (option int)) "clamped to the node count" (Some 2)
    (Mpi.parallelism w);
  Alcotest.(check string) "digest still matches cooperative" base got;
  (* Flat world: the cap is the rank count. *)
  let _, w = ring_digest ~parallel:16 ~n:3 () in
  Alcotest.(check (option int)) "clamped to the rank count" (Some 3)
    (Mpi.parallelism w)

(* ------------------------------------------------------------------ *)
(* Per-domain stats merge                                              *)
(* ------------------------------------------------------------------ *)

let test_merged_stats () =
  let n = 6 and rounds = 4 in
  let _, w = W.ring ~parallel:2 ~n ~rounds ~size:64 () in
  let merged = Mpi.merged_stats w in
  let sent = Simtime.Stats.get merged Simtime.Stats.Key.msgs_sent in
  (* every rank sends one message per round *)
  Alcotest.(check int) "total messages across domains" (n * rounds) sent;
  let per_domain =
    Array.to_list (Mpi.domain_envs w)
    |> List.map (fun e -> Simtime.Stats.get e.Simtime.Env.stats Simtime.Stats.Key.msgs_sent)
  in
  Alcotest.(check int) "merge is the sum of the shards" sent
    (List.fold_left ( + ) 0 per_domain);
  Alcotest.(check bool) "work actually spread over both domains" true
    (List.for_all (fun c -> c > 0) per_domain)

let test_stats_absorb_histograms () =
  let a = Simtime.Stats.create () and b = Simtime.Stats.create () in
  Simtime.Stats.observe a "h" 10.0;
  Simtime.Stats.observe b "h" 30.0;
  Simtime.Stats.add a "c" 2;
  Simtime.Stats.add b "c" 3;
  let m = Simtime.Stats.merged [ a; b ] in
  Alcotest.(check int) "counters add" 5 (Simtime.Stats.get m "c");
  (* originals untouched *)
  Alcotest.(check int) "absorb copies, not moves" 2 (Simtime.Stats.get a "c")

(* ------------------------------------------------------------------ *)
(* Trace merge                                                         *)
(* ------------------------------------------------------------------ *)

let test_trace_merge_sorted () =
  let env1 = Simtime.Env.create () and env2 = Simtime.Env.create () in
  let t1 = Trace.enable env1 and t2 = Trace.enable env2 in
  Simtime.Clock.advance env1.Simtime.Env.clock 5.0;
  Trace.record env1 ~rank:0 ~op:"a" ~detail:"";
  Simtime.Clock.advance env2.Simtime.Env.clock 2.0;
  Trace.record env2 ~rank:1 ~op:"b" ~detail:"";
  Simtime.Clock.advance env1.Simtime.Env.clock 1.0;
  Trace.record env1 ~rank:0 ~op:"c" ~detail:"";
  let merged = Trace.merge_events [ t1; t2 ] in
  Trace.disable env1;
  Trace.disable env2;
  Alcotest.(check (list string))
    "merged stream ordered by virtual time" [ "b"; "a"; "c" ]
    (List.map (fun e -> e.Trace.op) merged)

(* ------------------------------------------------------------------ *)
(* Guards                                                              *)
(* ------------------------------------------------------------------ *)

let expect_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let test_parallel_world_guards () =
  expect_invalid "fault plan" (fun () ->
      Mpi.create_world
        ~fault:(Mpi_core.Fault.plan ~seed:1 ~drop:0.1 ())
        ~parallel:2 ~n:4 ());
  expect_invalid "reliable layer" (fun () ->
      Mpi.create_world ~reliable:Mpi_core.Reliable.default_config ~parallel:2
        ~n:4 ());
  expect_invalid "shared env" (fun () ->
      Mpi.create_world ~env:(Simtime.Env.create ()) ~parallel:2 ~n:4 ());
  expect_invalid "zero domains" (fun () ->
      Mpi.create_world ~parallel:0 ~n:4 ())

let test_parallel_rejects_policy_and_record () =
  expect_invalid "policy under parallel" (fun () ->
      Fiber.run
        ~mode:(Fiber.Parallel { domains = 2; place = (fun i -> i) })
        ~policy:Fiber.Round_robin
        [ ("a", ignore) ]);
  expect_invalid "record under parallel" (fun () ->
      Fiber.run
        ~mode:(Fiber.Parallel { domains = 2; place = (fun i -> i) })
        ~record:(Fiber.new_trace ())
        [ ("a", ignore) ])

let test_explore_rejects_parallel_context () =
  (* Policy.assert_deterministic fires inside a parallel region. *)
  let saw = Atomic.make false in
  Fiber.run
    ~mode:(Fiber.Parallel { domains = 2; place = (fun i -> i) })
    [
      ( "probe",
        fun () ->
          match Check.Policy.assert_deterministic "test" with
          | exception Invalid_argument _ -> Atomic.set saw true
          | () -> () );
      ("idle", ignore);
    ];
  Alcotest.(check bool) "deterministic guard fired" true (Atomic.get saw)

let test_parallel_deadlock_detected () =
  (* Two fibers on two domains, each blocked forever: the last domain to
     park must declare a deadlock rather than sleep forever. *)
  match
    Fiber.run
      ~mode:(Fiber.Parallel { domains = 2; place = (fun i -> i) })
      [
        ("stuck0", fun () -> Fiber.wait_until ~label:"never" (fun () -> false));
        ("stuck1", fun () -> Fiber.wait_until ~label:"never" (fun () -> false));
      ]
  with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Fiber.Deadlock { policy; waiting; _ } ->
      Alcotest.(check bool)
        "policy names parallel mode" true
        (String.length policy >= 8 && String.sub policy 0 8 = "parallel");
      Alcotest.(check bool) "some fiber reported waiting" true (waiting <> [])

let test_buffer_pool_owner_guard () =
  let rt = Vm.Runtime.create () in
  let pool = Motor.Buffer_pool.create rt.Vm.Runtime.gc in
  let b = Motor.Buffer_pool.acquire pool 64 in
  Motor.Buffer_pool.release pool b;
  let d =
    Domain.spawn (fun () ->
        match Motor.Buffer_pool.acquire pool 64 with
        | exception Invalid_argument _ -> true
        | _ -> false)
  in
  Alcotest.(check bool) "cross-domain acquire rejected" true (Domain.join d)

let () =
  Alcotest.run "parallel"
    [
      ( "spsc",
        [
          Alcotest.test_case "fifo" `Quick test_spsc_fifo;
          Alcotest.test_case "full+wrap" `Quick test_spsc_full_and_wrap;
          Alcotest.test_case "cross-domain" `Quick test_spsc_cross_domain;
        ] );
      ( "digests",
        [
          Alcotest.test_case "ring" `Quick test_ring_digest_matches;
          Alcotest.test_case "allreduce" `Quick
            test_allreduce_bytes_digest_matches;
          Alcotest.test_case "repeatable" `Quick test_parallel_run_repeatable;
          Alcotest.test_case "domains clamp to placement" `Quick
            test_domains_clamped_to_nodes;
        ] );
      ( "stats",
        [
          Alcotest.test_case "merged per-domain" `Quick test_merged_stats;
          Alcotest.test_case "absorb" `Quick test_stats_absorb_histograms;
          Alcotest.test_case "trace merge" `Quick test_trace_merge_sorted;
        ] );
      ( "guards",
        [
          Alcotest.test_case "world options" `Quick test_parallel_world_guards;
          Alcotest.test_case "policy/record" `Quick
            test_parallel_rejects_policy_and_record;
          Alcotest.test_case "explore guard" `Quick
            test_explore_rejects_parallel_context;
          Alcotest.test_case "deadlock detected" `Quick
            test_parallel_deadlock_detected;
          Alcotest.test_case "buffer pool owner" `Quick
            test_buffer_pool_owner_guard;
        ] );
    ]
