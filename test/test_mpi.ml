(* Unit and integration tests for the MPICH2-like message-passing core:
   protocols (eager / rendezvous), matching queues, ordering, collectives,
   communicator management and dynamic process spawning. *)

module Mpi = Mpi_core.Mpi
module Comm = Mpi_core.Comm
module Coll = Mpi_core.Collectives
module Dynamic = Mpi_core.Dynamic
module Bv = Mpi_core.Buffer_view
module Ch3 = Mpi_core.Ch3
module Tm = Mpi_core.Tag_match
module Status = Mpi_core.Status
module Key = Simtime.Stats.Key

let payload n = Bytes.init n (fun i -> Char.chr ((i * 7 + n) land 0xff))

let run2 body = Mpi.run ~n:2 body

let stats w = (Mpi.env w).Simtime.Env.stats

(* ------------------------------------------------------------------ *)
(* Point-to-point                                                      *)
(* ------------------------------------------------------------------ *)

let roundtrip size () =
  let received = ref Bytes.empty in
  let w =
    run2 (fun p ->
        let comm = Mpi.comm_world (Mpi.world_of p) in
        if Mpi.rank p = 0 then
          Mpi.send p ~comm ~dst:1 ~tag:5 (Bv.of_bytes (payload size))
        else begin
          let buf = Bytes.create size in
          let st = Mpi.recv p ~comm ~src:0 ~tag:5 (Bv.of_bytes buf) in
          Alcotest.(check int) "status source" 0 st.Status.source;
          Alcotest.(check int) "status tag" 5 st.Status.tag;
          Alcotest.(check int) "status bytes" size st.Status.bytes;
          received := buf
        end)
  in
  ignore w;
  Alcotest.(check bytes) "payload intact" (payload size) !received

let test_eager_roundtrip () = roundtrip 64 ()
let test_rendezvous_roundtrip () = roundtrip 262_144 ()

let test_protocol_selection () =
  let w =
    run2 (fun p ->
        let comm = Mpi.comm_world (Mpi.world_of p) in
        if Mpi.rank p = 0 then begin
          Mpi.send p ~comm ~dst:1 ~tag:0 (Bv.of_bytes (payload 100));
          Mpi.send p ~comm ~dst:1 ~tag:1 (Bv.of_bytes (payload 200_000))
        end
        else begin
          ignore
            (Mpi.recv p ~comm ~src:0 ~tag:0 (Bv.of_bytes (Bytes.create 100)));
          ignore
            (Mpi.recv p ~comm ~src:0 ~tag:1
               (Bv.of_bytes (Bytes.create 200_000)))
        end)
  in
  Alcotest.(check int) "one eager send" 1 (Simtime.Stats.get (stats w) Key.eager_sends);
  Alcotest.(check int) "one rendezvous send" 1
    (Simtime.Stats.get (stats w) Key.rndv_sends)

let test_ssend_always_rendezvous () =
  let w =
    run2 (fun p ->
        let comm = Mpi.comm_world (Mpi.world_of p) in
        if Mpi.rank p = 0 then
          Mpi.ssend p ~comm ~dst:1 ~tag:0 (Bv.of_bytes (payload 8))
        else
          ignore
            (Mpi.recv p ~comm ~src:0 ~tag:0 (Bv.of_bytes (Bytes.create 8))))
  in
  Alcotest.(check int) "no eager" 0 (Simtime.Stats.get (stats w) Key.eager_sends);
  Alcotest.(check int) "rendezvous even when tiny" 1
    (Simtime.Stats.get (stats w) Key.rndv_sends)

let test_unexpected_queue () =
  let w =
    run2 (fun p ->
        let comm = Mpi.comm_world (Mpi.world_of p) in
        if Mpi.rank p = 0 then
          Mpi.send p ~comm ~dst:1 ~tag:9 (Bv.of_bytes (payload 32))
        else begin
          (* Let the message arrive (and be queued as unexpected) before
             posting the receive: iprobe pumps progress, which advances the
             virtual clock past the wire latency. *)
          Fiber.wait_until ~label:"arrival" (fun () ->
              Mpi.iprobe p ~comm ~src:0 ~tag:9 <> None);
          let buf = Bytes.create 32 in
          ignore (Mpi.recv p ~comm ~src:0 ~tag:9 (Bv.of_bytes buf));
          Alcotest.(check bytes) "buffered then delivered" (payload 32) buf
        end)
  in
  Alcotest.(check bool) "went through unexpected queue" true
    (Simtime.Stats.get (stats w) Key.unexpected_msgs >= 1)

let test_any_source_any_tag () =
  let got = ref [] in
  ignore
    (Mpi.run ~n:3 (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         if Mpi.rank p = 0 then
           for _ = 1 to 2 do
             let buf = Bytes.create 4 in
             let st =
               Mpi.recv p ~comm ~src:Tm.any_source ~tag:Tm.any_tag
                 (Bv.of_bytes buf)
             in
             got := (st.Status.source, st.Status.tag) :: !got
           done
         else
           Mpi.send p ~comm ~dst:0 ~tag:(10 + Mpi.rank p)
             (Bv.of_bytes (payload 4))));
  let sorted = List.sort compare !got in
  Alcotest.(check (list (pair int int)))
    "both senders matched" [ (1, 11); (2, 12) ] sorted

let test_message_ordering () =
  (* Same source, same tag: receives must see sends in order. *)
  let seen = ref [] in
  ignore
    (run2 (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         if Mpi.rank p = 0 then
           for i = 1 to 10 do
             let b = Bytes.create 4 in
             Bytes.set_int32_le b 0 (Int32.of_int i);
             Mpi.send p ~comm ~dst:1 ~tag:3 (Bv.of_bytes b)
           done
         else
           for _ = 1 to 10 do
             let b = Bytes.create 4 in
             ignore (Mpi.recv p ~comm ~src:0 ~tag:3 (Bv.of_bytes b));
             seen := Int32.to_int (Bytes.get_int32_le b 0) :: !seen
           done));
  Alcotest.(check (list int))
    "non-overtaking" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] (List.rev !seen)


let test_same_tag_multi_source_fifo () =
  (* Several sources firing the same tag at one receiver: per-source FIFO
     must hold even when matching with a fixed source. *)
  ignore
    (Mpi.run ~n:3 (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         if Mpi.rank p = 0 then
           for src = 1 to 2 do
             for k = 1 to 5 do
               let b = Bytes.create 4 in
               ignore (Mpi.recv p ~comm ~src ~tag:9 (Bv.of_bytes b));
               Alcotest.(check int)
                 (Printf.sprintf "src %d message %d in order" src k)
                 ((src * 100) + k)
                 (Int32.to_int (Bytes.get_int32_le b 0))
             done
           done
         else
           for k = 1 to 5 do
             let b = Bytes.create 4 in
             Bytes.set_int32_le b 0 (Int32.of_int ((Mpi.rank p * 100) + k));
             Mpi.send p ~comm ~dst:0 ~tag:9 (Bv.of_bytes b)
           done))

let test_truncation_rejected () =
  Alcotest.check_raises "oversized message faults"
    (Ch3.Mpi_error
       "message truncated: 64 bytes arriving into a 16-byte buffer")
    (fun () ->
      ignore
        (run2 (fun p ->
             let comm = Mpi.comm_world (Mpi.world_of p) in
             if Mpi.rank p = 0 then
               Mpi.send p ~comm ~dst:1 ~tag:0 (Bv.of_bytes (payload 64))
             else
               ignore
                 (Mpi.recv p ~comm ~src:0 ~tag:0
                    (Bv.of_bytes (Bytes.create 16))))))

let test_isend_irecv_test () =
  ignore
    (run2 (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         if Mpi.rank p = 0 then begin
           let req = Mpi.isend p ~comm ~dst:1 ~tag:0 (Bv.of_bytes (payload 8)) in
           ignore (Mpi.wait p req)
         end
         else begin
           let buf = Bytes.create 8 in
           let req = Mpi.irecv p ~comm ~src:0 ~tag:0 (Bv.of_bytes buf) in
           (* MPI_Test-style completion loop. *)
           while not (Mpi.test p req) do
             Fiber.yield ()
           done;
           Alcotest.(check bytes) "nonblocking payload" (payload 8) buf
         end))

let test_iprobe () =
  ignore
    (run2 (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         if Mpi.rank p = 0 then
           Mpi.send p ~comm ~dst:1 ~tag:77 (Bv.of_bytes (payload 24))
         else begin
           Fiber.wait_until ~label:"probe" (fun () ->
               Mpi.iprobe p ~comm ~src:0 ~tag:77 <> None);
           match Mpi.iprobe p ~comm ~src:0 ~tag:77 with
           | Some st ->
               Alcotest.(check int) "probed size" 24 st.Status.bytes;
               let buf = Bytes.create st.Status.bytes in
               ignore (Mpi.recv p ~comm ~src:0 ~tag:77 (Bv.of_bytes buf))
           | None -> Alcotest.fail "probe lost the message"
         end))

let test_self_send () =
  ignore
    (Mpi.run ~n:1 (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         let req = Mpi.isend p ~comm ~dst:0 ~tag:1 (Bv.of_bytes (payload 16)) in
         let buf = Bytes.create 16 in
         ignore (Mpi.recv p ~comm ~src:0 ~tag:1 (Bv.of_bytes buf));
         ignore (Mpi.wait p req);
         Alcotest.(check bytes) "self-send" (payload 16) buf))

let test_deadlock_detected () =
  (* Both ranks do a synchronous send first: neither can match, so the
     scheduler must report a deadlock rather than hang. *)
  (try
     ignore
       (run2 (fun p ->
            let comm = Mpi.comm_world (Mpi.world_of p) in
            let other = 1 - Mpi.rank p in
            Mpi.ssend p ~comm ~dst:other ~tag:0 (Bv.of_bytes (payload 8));
            ignore
              (Mpi.recv p ~comm ~src:other ~tag:0
                 (Bv.of_bytes (Bytes.create 8)))));
     Alcotest.fail "expected deadlock"
   with Fiber.Deadlock { waiting; _ } ->
     Alcotest.(check int) "both ranks blocked" 2 (List.length waiting))

let test_virtual_time_advances () =
  let w =
    run2 (fun p ->
        let comm = Mpi.comm_world (Mpi.world_of p) in
        let buf = Bytes.create 1024 in
        for _ = 1 to 10 do
          if Mpi.rank p = 0 then begin
            Mpi.send p ~comm ~dst:1 ~tag:0 (Bv.of_bytes (payload 1024));
            ignore (Mpi.recv p ~comm ~src:1 ~tag:0 (Bv.of_bytes buf))
          end
          else begin
            ignore (Mpi.recv p ~comm ~src:0 ~tag:0 (Bv.of_bytes buf));
            Mpi.send p ~comm ~dst:0 ~tag:0 (Bv.of_bytes (payload 1024))
          end
        done)
  in
  let us = Simtime.Env.now_us (Mpi.env w) in
  (* 20 one-way messages at ~>11us wire latency each. *)
  Alcotest.(check bool) "took at least 200 virtual us" true (us > 200.0);
  Alcotest.(check bool) "and less than a second" true (us < 1_000_000.0)

(* ------------------------------------------------------------------ *)
(* Collectives                                                         *)
(* ------------------------------------------------------------------ *)

let test_barrier () =
  let n = 5 in
  let phase = Array.make n 0 in
  ignore
    (Mpi.run ~n (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         let r = Mpi.rank p in
         phase.(r) <- 1;
         Coll.barrier p comm;
         (* After the barrier, everyone must have reached phase 1. *)
         Array.iteri
           (fun i ph ->
             Alcotest.(check bool)
               (Printf.sprintf "rank %d saw rank %d past phase 0" r i)
               true (ph >= 1))
           phase;
         phase.(r) <- 2))

let test_bcast sizes () =
  List.iter
    (fun size ->
      ignore
        (Mpi.run ~n:4 (fun p ->
             let comm = Mpi.comm_world (Mpi.world_of p) in
             let buf =
               if Mpi.rank p = 1 then Bytes.copy (payload size)
               else Bytes.create size
             in
             Coll.bcast p comm ~root:1 (Bv.of_bytes buf);
             Alcotest.(check bytes)
               (Printf.sprintf "bcast %dB at rank %d" size (Mpi.rank p))
               (payload size) buf)))
    sizes

let test_bcast_sizes () = test_bcast [ 8; 4096; 200_000 ] ()

let test_scatter_gather () =
  let n = 4 in
  ignore
    (Mpi.run ~n (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         let r = Mpi.rank p in
         let part_for i = Bytes.make 8 (Char.chr (65 + i)) in
         let mine = Bytes.create 8 in
         let parts =
           if r = 0 then Some (Array.init n (fun i -> Bv.of_bytes (part_for i)))
           else None
         in
         Coll.scatter p comm ~root:0 ~parts ~recv:(Bv.of_bytes mine);
         Alcotest.(check bytes) "scattered part" (part_for r) mine;
         (* Double every byte and gather back. *)
         Bytes.iteri
           (fun i c -> Bytes.set mine i (Char.chr (Char.code c + 1)))
           mine;
         let gathered = Array.init n (fun _ -> Bytes.create 8) in
         let sinks =
           if r = 0 then Some (Array.map Bv.of_bytes gathered) else None
         in
         Coll.gather p comm ~root:0 ~send:(Bv.of_bytes mine) ~parts:sinks;
         if r = 0 then
           Array.iteri
             (fun i b ->
               Alcotest.(check bytes)
                 (Printf.sprintf "gathered %d" i)
                 (Bytes.make 8 (Char.chr (66 + i)))
                 b)
             gathered))

let test_scatterv_uneven () =
  let n = 3 in
  ignore
    (Mpi.run ~n (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         let r = Mpi.rank p in
         let sizes = [| 4; 16; 8 |] in
         let mine = Bytes.create sizes.(r) in
         let parts =
           if r = 0 then
             Some (Array.init n (fun i -> Bv.of_bytes (payload sizes.(i))))
           else None
         in
         Coll.scatter p comm ~root:0 ~parts ~recv:(Bv.of_bytes mine);
         Alcotest.(check bytes) "uneven part" (payload sizes.(r)) mine))

let test_allgather () =
  let n = 5 in
  ignore
    (Mpi.run ~n (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         let r = Mpi.rank p in
         let mine = Bytes.make 4 (Char.chr (97 + r)) in
         let blocks = Coll.allgather p comm ~send:mine in
         Array.iteri
           (fun i b ->
             Alcotest.(check bytes)
               (Printf.sprintf "block %d at rank %d" i r)
               (Bytes.make 4 (Char.chr (97 + i)))
               b)
           blocks))

let test_reduce_sum () =
  let n = 6 in
  ignore
    (Mpi.run ~n (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         let r = Mpi.rank p in
         let b = Bytes.create 16 in
         for i = 0 to 3 do
           Bytes.set_int32_le b (4 * i) (Int32.of_int (r + i))
         done;
         match Coll.reduce p comm ~root:2 ~op:Coll.sum_i32 b with
         | Some acc ->
             Alcotest.(check int) "root is 2" 2 r;
             for i = 0 to 3 do
               (* sum over r of (r + i) = 15 + 6i *)
               Alcotest.(check int)
                 (Printf.sprintf "slot %d" i)
                 (15 + (6 * i))
                 (Int32.to_int (Bytes.get_int32_le acc (4 * i)))
             done
         | None -> Alcotest.(check bool) "non-root gets none" true (r <> 2)))

let test_allreduce_sum_f64 () =
  let n = 4 in
  ignore
    (Mpi.run ~n (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         let b = Bytes.create 8 in
         Bytes.set_int64_le b 0
           (Int64.bits_of_float (float_of_int (Mpi.rank p + 1)));
         let acc = Coll.allreduce p comm ~op:Coll.sum_f64 b in
         let v = Int64.float_of_bits (Bytes.get_int64_le acc 0) in
         Alcotest.(check (float 1e-9))
           (Printf.sprintf "rank %d" (Mpi.rank p))
           10.0 v))

(* ------------------------------------------------------------------ *)
(* Communicators                                                       *)
(* ------------------------------------------------------------------ *)

let test_comm_split () =
  let n = 6 in
  ignore
    (Mpi.run ~n (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         let r = Mpi.rank p in
         (* Even / odd groups, reverse-ordered by key. *)
         let sub = Mpi.comm_split p comm ~color:(r mod 2) ~key:(-r) in
         Alcotest.(check int) "group size" 3 (Comm.size sub);
         let my_sub_rank = Mpi.comm_rank p sub in
         (* key = -r, so highest world rank is sub-rank 0. *)
         let expected_members =
           if r mod 2 = 0 then [| 4; 2; 0 |] else [| 5; 3; 1 |]
         in
         Alcotest.(check (array int)) "membership" expected_members
           (Comm.members sub);
         (* Traffic within the new communicator. *)
         let next = (my_sub_rank + 1) mod Comm.size sub in
         let prev = (my_sub_rank - 1 + Comm.size sub) mod Comm.size sub in
         let out = Bytes.make 4 (Char.chr (48 + r)) in
         let inb = Bytes.create 4 in
         let s = Mpi.isend p ~comm:sub ~dst:next ~tag:0 (Bv.of_bytes out) in
         ignore (Mpi.recv p ~comm:sub ~src:prev ~tag:0 (Bv.of_bytes inb));
         ignore (Mpi.wait p s)))

let test_comm_dup_isolation () =
  ignore
    (run2 (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         let dup = Mpi.comm_dup p comm in
         Alcotest.(check bool) "distinct context" true
           (dup.Comm.ctx <> comm.Comm.ctx);
         if Mpi.rank p = 0 then begin
           (* Same (dst, tag) on both comms: contexts must keep them apart. *)
           Mpi.send p ~comm ~dst:1 ~tag:0 (Bv.of_bytes (Bytes.make 4 'w'));
           Mpi.send p ~comm:dup ~dst:1 ~tag:0 (Bv.of_bytes (Bytes.make 4 'd'))
         end
         else begin
           let b1 = Bytes.create 4 in
           let b2 = Bytes.create 4 in
           (* Receive on dup FIRST: if contexts leaked, the world message
              (sent first) would land here. *)
           ignore (Mpi.recv p ~comm:dup ~src:0 ~tag:0 (Bv.of_bytes b1));
           ignore (Mpi.recv p ~comm ~src:0 ~tag:0 (Bv.of_bytes b2));
           Alcotest.(check bytes) "dup got dup's" (Bytes.make 4 'd') b1;
           Alcotest.(check bytes) "world got world's" (Bytes.make 4 'w') b2
         end))

(* ------------------------------------------------------------------ *)
(* Dynamic process management                                          *)
(* ------------------------------------------------------------------ *)

let test_spawn_and_intercomm () =
  let results = ref [] in
  ignore
    (run2 (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         let child p ic =
           (* Each child doubles what any parent sends it. *)
           let b = Bytes.create 4 in
           let st =
             Dynamic.recv p ic ~src:Mpi_core.Tag_match.any_source ~tag:7
               (Bv.of_bytes b)
           in
           let v = Int32.to_int (Bytes.get_int32_le b 0) in
           Bytes.set_int32_le b 0 (Int32.of_int (2 * v));
           Dynamic.send p ic ~dst:st.Status.source ~tag:8 (Bv.of_bytes b)
         in
         let ic = Dynamic.spawn p ~comm ~n:2 child in
         Alcotest.(check int) "two children" 2 (Dynamic.remote_size ic);
         (* Parent r sends r+1 to child r, expects it doubled. *)
         let r = Mpi.rank p in
         let b = Bytes.create 4 in
         Bytes.set_int32_le b 0 (Int32.of_int (r + 1));
         Dynamic.send p ic ~dst:r ~tag:7 (Bv.of_bytes b);
         ignore (Dynamic.recv p ic ~src:r ~tag:8 (Bv.of_bytes b));
         results := (r, Int32.to_int (Bytes.get_int32_le b 0)) :: !results));
  Alcotest.(check (list (pair int int)))
    "children doubled"
    [ (0, 2); (1, 4) ]
    (List.sort compare !results)

let test_spawn_merge () =
  ignore
    (run2 (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         let child cp ic =
           let merged = Dynamic.merge cp ic in
           Coll.barrier cp merged;
           let b = Bytes.create 4 in
           Coll.bcast cp merged ~root:0 (Bv.of_bytes b);
           Alcotest.(check int) "child sees root value" 99
             (Int32.to_int (Bytes.get_int32_le b 0))
         in
         let ic = Dynamic.spawn p ~comm ~n:2 child in
         let merged = Dynamic.merge p ic in
         Alcotest.(check int) "merged size" 4 (Comm.size merged);
         Coll.barrier p merged;
         let b = Bytes.create 4 in
         if Mpi.comm_rank p merged = 0 then
           Bytes.set_int32_le b 0 (Int32.of_int 99);
         Coll.bcast p merged ~root:0 (Bv.of_bytes b)))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_random_traffic =
  QCheck.Test.make ~name:"random message matrix delivered intact" ~count:30
    QCheck.(
      pair (int_range 2 5)
        (list_of_size (Gen.int_range 1 12) (pair (int_range 0 4) (int_range 1 512))))
    (fun (n, msgs) ->
      (* Each entry (d, size): rank (d mod n) sends `size` bytes to rank
         ((d + 1) mod n). All messages must arrive intact. *)
      let plan =
        List.mapi
          (fun i (d, size) -> (i, d mod n, (d + 1) mod n, size))
          msgs
      in
      let ok = ref true in
      ignore
        (Mpi.run ~n (fun p ->
             let comm = Mpi.comm_world (Mpi.world_of p) in
             let r = Mpi.rank p in
             (* Post receives first (nonblocking), then send. *)
             let recvs =
               List.filter_map
                 (fun (tag, src, dst, size) ->
                   if dst = r then
                     let buf = Bytes.create size in
                     Some
                       ( Mpi.irecv p ~comm ~src ~tag (Bv.of_bytes buf),
                         buf,
                         size )
                   else None)
                 plan
             in
             List.iter
               (fun (tag, src, dst, size) ->
                 if src = r then
                   Mpi.send p ~comm ~dst ~tag (Bv.of_bytes (payload size)))
               plan;
             List.iter
               (fun (req, buf, size) ->
                 ignore (Mpi.wait p req);
                 if not (Bytes.equal buf (payload size)) then ok := false)
               recvs));
      !ok)

(* ------------------------------------------------------------------ *)
(* Matching queues (unit level)                                        *)
(* ------------------------------------------------------------------ *)

module Q = Mpi_core.Queues
module Pk = Mpi_core.Packet

let envelope ~src ~tag ?(context = 0) ~seq () =
  {
    Pk.e_src = src; e_dst = 0; e_tag = tag; e_context = context;
    e_bytes = 8; e_seq = seq;
  }

let unexpected_seq q pattern =
  match Q.take_unexpected q pattern with
  | Some (Q.U_eager (e, _)) -> Some e.Pk.e_seq
  | Some (Q.U_rts (e, _)) -> Some e.Pk.e_seq
  | None -> None

let test_unexpected_fifo_per_pattern () =
  let env = Simtime.Env.create () in
  let q = Q.create env in
  (* Interleave two (src, tag) streams; each must drain in arrival order
     (MPI's non-overtaking guarantee), independent of the other. *)
  List.iter
    (fun (src, tag, seq) ->
      Q.add_unexpected q (Q.U_eager (envelope ~src ~tag ~seq (), payload 8)))
    [ (0, 1, 1); (2, 5, 2); (0, 1, 3); (2, 5, 4); (0, 1, 5) ];
  let p01 = { Tm.m_src = 0; m_tag = 1; m_context = 0 } in
  let p25 = { Tm.m_src = 2; m_tag = 5; m_context = 0 } in
  Alcotest.(check (option int)) "first of stream A" (Some 1)
    (unexpected_seq q p01);
  Alcotest.(check (option int)) "first of stream B" (Some 2)
    (unexpected_seq q p25);
  Alcotest.(check (option int)) "second of stream A" (Some 3)
    (unexpected_seq q p01);
  Alcotest.(check (option int)) "third of stream A" (Some 5)
    (unexpected_seq q p01);
  Alcotest.(check (option int)) "second of stream B" (Some 4)
    (unexpected_seq q p25);
  Alcotest.(check int) "drained" 0 (Q.unexpected_length q)

let test_unexpected_wildcards () =
  let env = Simtime.Env.create () in
  let q = Q.create env in
  List.iter
    (fun (src, tag, seq) ->
      Q.add_unexpected q (Q.U_eager (envelope ~src ~tag ~seq (), payload 8)))
    [ (3, 7, 1); (1, 7, 2); (3, 9, 3) ];
  (* any-source keeps tag selectivity; any-tag keeps source selectivity;
     the double wildcard takes strict arrival order. *)
  Alcotest.(check (option int)) "any_source picks earliest tag 7" (Some 1)
    (unexpected_seq q { Tm.m_src = Tm.any_source; m_tag = 7; m_context = 0 });
  Alcotest.(check (option int)) "any_tag picks earliest src 3" (Some 3)
    (unexpected_seq q { Tm.m_src = 3; m_tag = Tm.any_tag; m_context = 0 });
  Alcotest.(check (option int)) "double wildcard takes arrival order"
    (Some 2)
    (unexpected_seq q
       { Tm.m_src = Tm.any_source; m_tag = Tm.any_tag; m_context = 0 });
  Alcotest.(check (option int)) "context still discriminates" None
    (unexpected_seq q
       { Tm.m_src = Tm.any_source; m_tag = Tm.any_tag; m_context = 2 })

let test_posted_queue_order_and_selectivity () =
  let env = Simtime.Env.create () in
  let q = Q.create env in
  let post ~src ~tag id =
    Q.post_recv q
      {
        Q.p_pattern = { Tm.m_src = src; m_tag = tag; m_context = 0 };
        p_sink = Bv.of_bytes (Bytes.create 8);
        p_req = Mpi_core.Request.create ~id Mpi_core.Request.Recv_req;
      }
  in
  post ~src:Tm.any_source ~tag:4 1;
  post ~src:2 ~tag:Tm.any_tag 2;
  post ~src:2 ~tag:4 3;
  (* An envelope matching several posted receives must take the earliest
     posted one, and matching consumes the entry. *)
  let id_for e =
    Option.map
      (fun (p : Q.posted) -> Mpi_core.Request.id p.Q.p_req)
      (Q.take_posted q e)
  in
  Alcotest.(check (option int)) "earliest posted wins" (Some 1)
    (id_for (envelope ~src:2 ~tag:4 ~seq:1 ()));
  Alcotest.(check (option int)) "next match in post order" (Some 2)
    (id_for (envelope ~src:2 ~tag:4 ~seq:2 ()));
  Alcotest.(check (option int)) "specific entry last" (Some 3)
    (id_for (envelope ~src:2 ~tag:4 ~seq:3 ()));
  Alcotest.(check (option int)) "queue now empty" None
    (id_for (envelope ~src:2 ~tag:4 ~seq:4 ()));
  post ~src:5 ~tag:0 4;
  Alcotest.(check (option int)) "non-matching envelope passes by" None
    (id_for (envelope ~src:2 ~tag:0 ~seq:5 ()));
  Alcotest.(check int) "unmatched entry still posted" 1 (Q.posted_length q)

let prop_posted_vs_unexpected_race =
  QCheck.Test.make
    ~name:"posted/unexpected races deliver every message exactly once"
    ~count:60
    QCheck.(pair (int_range 1 12) (int_range 0 1000))
    (fun (msgs, seed) ->
      (* Rank 1 posts half its receives before the sends land and half
         after (a race between arrival and posting); every payload must be
         delivered exactly once whichever queue each message went
         through. *)
      let received = Array.make msgs Bytes.empty in
      ignore
        (run2 (fun p ->
             let comm = Mpi.comm_world (Mpi.world_of p) in
             if Mpi.rank p = 0 then
               for tag = 0 to msgs - 1 do
                 Mpi.send p ~comm ~dst:1 ~tag
                   (Bv.of_bytes (payload (tag + seed mod 7 + 1)))
               done
             else begin
               let early, late =
                 List.partition
                   (fun tag -> (tag + seed) mod 2 = 0)
                   (List.init msgs Fun.id)
               in
               let post tag =
                 let buf = Bytes.create (tag + seed mod 7 + 1) in
                 received.(tag) <- buf;
                 Mpi.irecv p ~comm ~src:0 ~tag (Bv.of_bytes buf)
               in
               let early_reqs = List.map post early in
               (* Let some sends land unexpected before posting the rest. *)
               for _ = 1 to 3 do
                 Fiber.yield ()
               done;
               let late_reqs = List.map post late in
               List.iter
                 (fun r -> ignore (Mpi.wait p r))
                 (early_reqs @ late_reqs)
             end));
      Array.for_all2
        (fun buf tag -> Bytes.equal buf (payload (tag + seed mod 7 + 1)))
        received
        (Array.init msgs Fun.id))

(* ------------------------------------------------------------------ *)
(* Buffer views: windows and zero-copy concatenation                   *)
(* ------------------------------------------------------------------ *)

let test_sub_view () =
  let b = payload 32 in
  let v = Bv.sub_view (Bv.of_bytes b) ~off:8 ~len:16 in
  Alcotest.(check int) "window length" 16 (Bv.length v);
  Alcotest.(check bytes) "window read" (Bytes.sub b 8 16) (Bv.read_all v);
  (* A nested window composes offsets. *)
  let vv = Bv.sub_view v ~off:4 ~len:4 in
  Alcotest.(check bytes) "nested read" (Bytes.sub b 12 4) (Bv.read_all vv);
  Bv.write_all v (Bytes.make 16 'x');
  Alcotest.(check bytes) "window written" (Bytes.make 16 'x')
    (Bytes.sub b 8 16);
  Alcotest.(check bytes) "head intact" (Bytes.sub (payload 32) 0 8)
    (Bytes.sub b 0 8);
  Alcotest.(check bytes) "tail intact" (Bytes.sub (payload 32) 24 8)
    (Bytes.sub b 24 8);
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Buffer_view.sub_view: range out of bounds") (fun () ->
      ignore (Bv.sub_view (Bv.of_bytes b) ~off:20 ~len:16))

let test_concat_view () =
  let a = Bytes.of_string "aaaa"
  and b = Bytes.of_string "bb"
  and c = Bytes.of_string "cccccc" in
  let v = Bv.concat [ Bv.of_bytes a; Bv.of_bytes b; Bv.of_bytes c ] in
  Alcotest.(check int) "total length" 12 (Bv.length v);
  Alcotest.(check string) "read spans fragments" "aaaabbcccccc"
    (Bytes.to_string (Bv.read_all v));
  (* A partial read crossing both fragment boundaries. *)
  let dst = Bytes.make 5 '.' in
  v.Bv.blit_to ~pos:2 ~dst ~dst_off:0 ~len:5;
  Alcotest.(check string) "cross-fragment read" "aabbc" (Bytes.to_string dst);
  Bv.write_all v (Bytes.of_string "XXXXYYZZZZZZ");
  Alcotest.(check string) "fragment 1 written" "XXXX" (Bytes.to_string a);
  Alcotest.(check string) "fragment 2 written" "YY" (Bytes.to_string b);
  Alcotest.(check string) "fragment 3 written" "ZZZZZZ" (Bytes.to_string c);
  (* A partial write landing across a boundary. *)
  v.Bv.blit_from ~pos:3 ~src:(Bytes.of_string "mn") ~src_off:0 ~len:2;
  Alcotest.(check string) "boundary write left" "XXXm" (Bytes.to_string a);
  Alcotest.(check string) "boundary write right" "nY" (Bytes.to_string b)

(* ------------------------------------------------------------------ *)
(* Request sets: test_all / test_any / wait_some                       *)
(* ------------------------------------------------------------------ *)

let test_request_sets () =
  ignore
    (run2 (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         if Mpi.rank p = 1 then begin
           Mpi.send p ~comm ~dst:0 ~tag:0 (Bv.of_bytes (payload 16));
           (* Stagger the second send so the first can complete alone. *)
           for _ = 1 to 5 do
             Fiber.yield ()
           done;
           Mpi.send p ~comm ~dst:0 ~tag:1 (Bv.of_bytes (payload 16))
         end
         else begin
           let b0 = Bytes.create 16 and b1 = Bytes.create 16 in
           let r0 = Mpi.irecv p ~comm ~src:1 ~tag:0 (Bv.of_bytes b0) in
           let r1 = Mpi.irecv p ~comm ~src:1 ~tag:1 (Bv.of_bytes b1) in
           Alcotest.(check bool) "empty list trivially complete" true
             (Mpi.test_all p []);
           Alcotest.check_raises "wait_some rejects empty"
             (Invalid_argument "Mpi.wait_some: empty request list") (fun () ->
               ignore (Mpi.wait_some p []));
           let some = Mpi.wait_some p [ r0; r1 ] in
           if some = [] then Alcotest.fail "wait_some returned nothing";
           List.iter
             (fun r ->
               Alcotest.(check bool) "wait_some results complete" true
                 (Mpi_core.Request.is_complete r))
             some;
           (match Mpi.test_any p [ r0; r1 ] with
           | Some _ -> ()
           | None -> Alcotest.fail "test_any found nothing after wait_some");
           Mpi.wait_all p [ r0; r1 ];
           Alcotest.(check bool) "test_all after wait_all" true
             (Mpi.test_all p [ r0; r1 ]);
           Alcotest.(check bytes) "tag 0 payload" (payload 16) b0;
           Alcotest.(check bytes) "tag 1 payload" (payload 16) b1
         end))

let () =
  Alcotest.run "mpi_core"
    [
      ( "point-to-point",
        [
          Alcotest.test_case "eager roundtrip" `Quick test_eager_roundtrip;
          Alcotest.test_case "rendezvous roundtrip" `Quick
            test_rendezvous_roundtrip;
          Alcotest.test_case "protocol selection by size" `Quick
            test_protocol_selection;
          Alcotest.test_case "ssend always rendezvous" `Quick
            test_ssend_always_rendezvous;
          Alcotest.test_case "unexpected queue" `Quick test_unexpected_queue;
          Alcotest.test_case "any source / any tag" `Quick
            test_any_source_any_tag;
          Alcotest.test_case "message ordering" `Quick test_message_ordering;
          Alcotest.test_case "same-tag multi-source FIFO" `Quick
            test_same_tag_multi_source_fifo;
          Alcotest.test_case "truncation rejected" `Quick
            test_truncation_rejected;
          Alcotest.test_case "isend/irecv/test" `Quick test_isend_irecv_test;
          Alcotest.test_case "iprobe" `Quick test_iprobe;
          Alcotest.test_case "self send" `Quick test_self_send;
          Alcotest.test_case "deadlock detected" `Quick
            test_deadlock_detected;
          Alcotest.test_case "virtual time advances" `Quick
            test_virtual_time_advances;
        ] );
      ( "views and request sets",
        [
          Alcotest.test_case "sub_view windows" `Quick test_sub_view;
          Alcotest.test_case "concat views" `Quick test_concat_view;
          Alcotest.test_case "test_all / test_any / wait_some" `Quick
            test_request_sets;
        ] );
      ( "collectives",
        [
          Alcotest.test_case "barrier" `Quick test_barrier;
          Alcotest.test_case "bcast (eager and rendezvous)" `Quick
            test_bcast_sizes;
          Alcotest.test_case "scatter / gather" `Quick test_scatter_gather;
          Alcotest.test_case "scatterv uneven" `Quick test_scatterv_uneven;
          Alcotest.test_case "allgather" `Quick test_allgather;
          Alcotest.test_case "reduce sum" `Quick test_reduce_sum;
          Alcotest.test_case "allreduce sum f64" `Quick
            test_allreduce_sum_f64;
        ] );
      ( "queues",
        [
          Alcotest.test_case "unexpected FIFO per pattern" `Quick
            test_unexpected_fifo_per_pattern;
          Alcotest.test_case "wildcard matching" `Quick
            test_unexpected_wildcards;
          Alcotest.test_case "posted order and selectivity" `Quick
            test_posted_queue_order_and_selectivity;
          QCheck_alcotest.to_alcotest prop_posted_vs_unexpected_race;
        ] );
      ( "communicators",
        [
          Alcotest.test_case "comm_split" `Quick test_comm_split;
          Alcotest.test_case "comm_dup isolation" `Quick
            test_comm_dup_isolation;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "spawn and intercomm" `Quick
            test_spawn_and_intercomm;
          Alcotest.test_case "spawn then merge" `Quick test_spawn_merge;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_random_traffic ]);
    ]
