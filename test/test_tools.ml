(* Tests for the tooling layers: the MPE-style trace subsystem and the
   ASCII chart renderer. *)

module Mpi = Mpi_core.Mpi
module Trace = Mpi_core.Trace
module Bv = Mpi_core.Buffer_view

let test_trace_records_device_events () =
  let env = Simtime.Env.create ~cost:Simtime.Cost.native_cpp () in
  let trace = Trace.enable env in
  let w = Mpi.create_world ~env ~n:2 () in
  let comm = Mpi.comm_world w in
  let body rank () =
    let p = Mpi.proc w rank in
    let b = Bytes.create 64 in
    if rank = 0 then Mpi.send p ~comm ~dst:1 ~tag:9 (Bv.of_bytes b)
    else ignore (Mpi.recv p ~comm ~src:0 ~tag:9 (Bv.of_bytes b))
  in
  Fiber.run [ ("t0", body 0); ("t1", body 1) ];
  let events = Trace.events trace in
  let ops = List.map (fun e -> (e.Trace.rank, e.Trace.op)) events in
  Alcotest.(check bool) "sender isend recorded" true
    (List.mem (0, "isend") ops);
  Alcotest.(check bool) "receiver irecv recorded" true
    (List.mem (1, "irecv") ops);
  Alcotest.(check bool) "delivery recorded" true (List.mem (1, "eager") ops);
  (* Timestamps are monotone. *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
        a.Trace.t_us <= b.Trace.t_us && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone timeline" true (monotone events)

let test_trace_off_by_default () =
  let env = Simtime.Env.create ~cost:Simtime.Cost.native_cpp () in
  Alcotest.(check bool) "no trace attached" true (Trace.find env = None);
  (* Recording without a trace must be a harmless no-op. *)
  Trace.record env ~rank:0 ~op:"x" ~detail:"y"

let test_trace_ring_buffer_drops_oldest () =
  let env = Simtime.Env.create () in
  let trace = Trace.enable ~capacity:8 env in
  for i = 1 to 20 do
    Simtime.Env.charge env 1000.0;
    Trace.record env ~rank:0 ~op:"tick" ~detail:(string_of_int i)
  done;
  Alcotest.(check int) "bounded" 8 (Trace.length trace);
  Alcotest.(check int) "dropped counted" 12 (Trace.dropped trace);
  let details = List.map (fun e -> e.Trace.detail) (Trace.events trace) in
  Alcotest.(check (list string)) "kept the newest, oldest first"
    [ "13"; "14"; "15"; "16"; "17"; "18"; "19"; "20" ]
    details;
  Trace.clear trace;
  Alcotest.(check int) "cleared" 0 (Trace.length trace)

let test_trace_rendezvous_sequence () =
  (* A rendezvous transfer must show the full RTS/CTS/DATA handshake. *)
  let env = Simtime.Env.create ~cost:Simtime.Cost.native_cpp () in
  let trace = Trace.enable env in
  let w = Mpi.create_world ~env ~n:2 () in
  let comm = Mpi.comm_world w in
  let size = 200_000 in
  let body rank () =
    let p = Mpi.proc w rank in
    let b = Bytes.create size in
    if rank = 0 then Mpi.send p ~comm ~dst:1 ~tag:0 (Bv.of_bytes b)
    else ignore (Mpi.recv p ~comm ~src:0 ~tag:0 (Bv.of_bytes b))
  in
  Fiber.run [ ("r0", body 0); ("r1", body 1) ];
  let ops = List.map (fun e -> e.Trace.op) (Trace.events trace) in
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " present") true
        (List.mem expected ops))
    [ "isend/rndv"; "rts"; "cts"; "data" ]

let render_chart series =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Harness.Chart.log_log ~out:fmt ~title:"t" ~xlabel:"x" ~ylabel:"y" ~series ();
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let test_chart_renders_series () =
  let s =
    render_chart
      [
        ("up", [ (1.0, 10.0); (10.0, 100.0); (100.0, 1000.0) ]);
        ("down", [ (1.0, 1000.0); (10.0, 100.0); (100.0, 10.0) ]);
      ]
  in
  Alcotest.(check bool) "has legend" true
    (String.length s > 0
    &&
    let contains sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    contains "*=up" && contains "o=down" && contains "log scale")

let test_chart_empty_series () =
  let s = render_chart [ ("nothing", []) ] in
  Alcotest.(check bool) "handles no data" true
    (String.length s > 0)

let test_chart_skips_nonpositive () =
  (* Zero and negative values cannot be drawn on a log axis and must not
     crash the renderer. *)
  let s = render_chart [ ("mixed", [ (0.0, 5.0); (10.0, 0.0); (10.0, 5.0) ]) ] in
  Alcotest.(check bool) "rendered" true (String.length s > 0)

(* ------------------------------------------------------------------ *)
(* The perf gate (tools/gate.ml): parser and threshold logic            *)
(* ------------------------------------------------------------------ *)

let doc groups_json = Gate.doc_of_string groups_json

let bench_json ?cores groups =
  let cores_field =
    match cores with
    | None -> ""
    | Some c -> Printf.sprintf "\"cores\": %d, " c
  in
  let group (name, tests) =
    Printf.sprintf "\"%s\": {%s}" name
      (String.concat ", "
         (List.map (fun (t, ns) -> Printf.sprintf "\"%s\": %f" t ns) tests))
  in
  Printf.sprintf "{\"schema\": 1, %s\"groups\": {%s}}" cores_field
    (String.concat ", " (List.map group groups))

let test_gate_malformed_json () =
  List.iter
    (fun s ->
      match Gate.doc_of_string s with
      | exception Gate.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected Parse_error for %S" s)
    [
      "";
      "{";
      "{\"groups\": {\"a\": {\"t\": }}}";
      "{\"schema\": 1}" (* well-formed JSON, no groups *);
      "{\"groups\": {}} trailing";
    ]

let test_gate_missing_in_current_fails () =
  let baseline = doc (bench_json [ ("fig9", [ ("a", 100.0); ("b", 100.0) ]) ]) in
  let current = doc (bench_json [ ("fig9", [ ("a", 100.0) ]) ]) in
  let rows = Gate.compare_docs ~current ~baseline () in
  let b = List.find (fun r -> r.Gate.r_test = "b") rows in
  Alcotest.(check bool) "missing bench fails the gate" true (Gate.failed b);
  Alcotest.(check bool) "verdict is Missing" true (b.Gate.r_verdict = Gate.Missing)

let test_gate_new_in_current_informational () =
  let baseline = doc (bench_json [ ("fig9", [ ("a", 100.0) ]) ]) in
  let current = doc (bench_json [ ("fig9", [ ("a", 100.0); ("c", 50.0) ]) ]) in
  let rows = Gate.compare_docs ~current ~baseline () in
  let c = List.find (fun r -> r.Gate.r_test = "c") rows in
  Alcotest.(check bool) "new bench does not fail" false (Gate.failed c);
  Alcotest.(check bool) "verdict is New" true (c.Gate.r_verdict = Gate.New)

let test_gate_thresholds () =
  (* Exactly at the virtual threshold passes; one part in a thousand
     over it regresses. Wall-clock groups get the looser 1.50. *)
  let baseline =
    doc
      (bench_json
         [ ("fig9", [ ("t", 1000.0) ]); ("speedup", [ ("w@1dom", 1000.0) ]) ])
  in
  let check_verdict groups test expect_fail =
    let current = doc (bench_json groups) in
    let rows = Gate.compare_docs ~current ~baseline () in
    let r = List.find (fun r -> r.Gate.r_test = test) rows in
    Alcotest.(check bool)
      (Printf.sprintf "%s fail=%b" test expect_fail)
      expect_fail (Gate.failed r)
  in
  check_verdict [ ("fig9", [ ("t", 1250.0) ]) ] "t" false;
  check_verdict [ ("fig9", [ ("t", 1251.5) ]) ] "t" true;
  (* 1.25 < wall ratio 1.4 < 1.50: only the virtual threshold trips *)
  check_verdict [ ("speedup", [ ("w@1dom", 1400.0) ]) ] "w@1dom" false;
  check_verdict [ ("speedup", [ ("w@1dom", 1501.5) ]) ] "w@1dom" true

let test_gate_wall_clock_only_filter () =
  let baseline =
    doc
      (bench_json
         [ ("fig9", [ ("t", 100.0) ]); ("speedup", [ ("w@1dom", 100.0) ]) ])
  in
  (* fig9 absent from the current run: fatal normally, invisible with
     the filter (the multicore job only runs the speedup benches). *)
  let current = doc (bench_json [ ("speedup", [ ("w@1dom", 100.0) ]) ]) in
  let all = Gate.compare_docs ~current ~baseline () in
  Alcotest.(check bool) "full gate sees the missing bench" true
    (List.exists Gate.failed all);
  let wall = Gate.compare_docs ~wall_clock_only:true ~current ~baseline () in
  Alcotest.(check bool) "wall-clock-only gate does not" false
    (List.exists Gate.failed wall);
  Alcotest.(check (list string))
    "only wall groups compared" [ "speedup" ]
    (List.sort_uniq compare (List.map (fun r -> r.Gate.r_group) wall))

let test_gate_speedup_ratio () =
  let current =
    doc
      (bench_json ~cores:8
         [
           ( "speedup",
             [
               ("ring@1dom", 1000.0); ("ring@2dom", 600.0);
               ("ring@4dom", 400.0); ("slow@1dom", 1000.0);
               ("slow@4dom", 900.0); ("nodial", 123.0);
             ] );
         ])
  in
  match Gate.check_speedup ~min:2.0 current with
  | Gate.Enforced (passing, failing) ->
      Alcotest.(check (list string))
        "ring reaches 2x at its highest domain count" [ "ring" ]
        (List.map (fun s -> s.Gate.s_workload) passing);
      Alcotest.(check (list string))
        "slow fails" [ "slow" ]
        (List.map (fun s -> s.Gate.s_workload) failing);
      let ring = List.hd passing in
      Alcotest.(check int) "ratio taken at 4 domains" 4 ring.Gate.s_domains;
      Alcotest.(check (float 1e-9)) "ratio value" 2.5 ring.Gate.s_ratio
  | _ -> Alcotest.fail "expected Enforced"

let test_gate_speedup_skipped_on_small_machines () =
  let entries = [ ("speedup", [ ("ring@1dom", 1000.0); ("ring@4dom", 2000.0) ]) ] in
  (match Gate.check_speedup ~min:1.8 (doc (bench_json ~cores:1 entries)) with
  | Gate.Skipped_low_cores 1 -> ()
  | _ -> Alcotest.fail "1-core machine must skip the ratio gate");
  (match Gate.check_speedup ~min:1.8 (doc (bench_json ~cores:4 entries)) with
  | Gate.Enforced ([], [ s ]) ->
      Alcotest.(check (float 1e-9)) "0.5x reported" 0.5 s.Gate.s_ratio
  | _ -> Alcotest.fail "4-core machine must enforce");
  match Gate.check_speedup ~min:1.8 (doc (bench_json ~cores:8 [])) with
  | Gate.No_data -> ()
  | _ -> Alcotest.fail "no speedup entries must be No_data"

let test_gate_reseed_round_trip () =
  (* --update-baseline copies CURRENT over BASELINE byte-for-byte; the
     next comparison against the reseeded baseline is all-1.00 clean. *)
  let s =
    bench_json ~cores:2
      [ ("fig9", [ ("a", 123.4) ]); ("speedup", [ ("r@1dom", 5.0) ]) ]
  in
  let reparsed = doc s in
  let again = Gate.compare_docs ~current:reparsed ~baseline:reparsed () in
  Alcotest.(check bool) "self-comparison is clean" false
    (List.exists Gate.failed again);
  List.iter
    (fun r ->
      match r.Gate.r_verdict with
      | Gate.Pass ratio -> Alcotest.(check (float 1e-9)) "ratio 1.0" 1.0 ratio
      | _ -> Alcotest.fail "expected Pass")
    again;
  Alcotest.(check (option int)) "cores survive the round trip" (Some 2)
    reparsed.Gate.d_cores

let () =
  Alcotest.run "tools"
    [
      ( "gate",
        [
          Alcotest.test_case "malformed json" `Quick test_gate_malformed_json;
          Alcotest.test_case "missing in current" `Quick
            test_gate_missing_in_current_fails;
          Alcotest.test_case "new in current" `Quick
            test_gate_new_in_current_informational;
          Alcotest.test_case "thresholds" `Quick test_gate_thresholds;
          Alcotest.test_case "wall-clock-only filter" `Quick
            test_gate_wall_clock_only_filter;
          Alcotest.test_case "speedup ratio" `Quick test_gate_speedup_ratio;
          Alcotest.test_case "speedup cores guard" `Quick
            test_gate_speedup_skipped_on_small_machines;
          Alcotest.test_case "reseed round trip" `Quick
            test_gate_reseed_round_trip;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records device events" `Quick
            test_trace_records_device_events;
          Alcotest.test_case "off by default" `Quick test_trace_off_by_default;
          Alcotest.test_case "ring buffer drops oldest" `Quick
            test_trace_ring_buffer_drops_oldest;
          Alcotest.test_case "rendezvous handshake sequence" `Quick
            test_trace_rendezvous_sequence;
        ] );
      ( "chart",
        [
          Alcotest.test_case "renders series with legend" `Quick
            test_chart_renders_series;
          Alcotest.test_case "empty series" `Quick test_chart_empty_series;
          Alcotest.test_case "non-positive values skipped" `Quick
            test_chart_skips_nonpositive;
        ] );
    ]
