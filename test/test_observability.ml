(* The observability layer end to end: the Chrome-trace exporter's exact
   output (golden), its pair-repair under ring-buffer overflow, snapshot
   diffing, and the enable/disable lifecycle of the probe sinks. *)

module Env = Simtime.Env
module Stats = Simtime.Stats
module Probe = Simtime.Probe
module Trace = Mpi_core.Trace

let fresh_env () = Env.create ~cost:Simtime.Cost.motor ()

(* ------------------------------------------------------------------ *)
(* Golden Chrome-trace JSON: field order and formatting are the        *)
(* contract (Perfetto parses it; CI archives it; diffs must be tame).  *)
(* ------------------------------------------------------------------ *)

let golden =
  {|{
"displayTimeUnit": "ms",
"traceEvents": [
    {"name": "process_name", "ph": "M", "pid": 0, "tid": 0, "args": {"name": "motor"}},
    {"name": "thread_name", "ph": "M", "pid": 0, "tid": 1000, "args": {"name": "runtime"}},
    {"name": "thread_name", "ph": "M", "pid": 0, "tid": 0, "args": {"name": "rank 0"}},
    {"name": "thread_name", "ph": "M", "pid": 0, "tid": 1, "args": {"name": "rank 1"}},
    {"name": "eager", "cat": "ch3", "ph": "B", "ts": 0.000, "pid": 0, "tid": 0, "args": {"dst": "1", "bytes": "64"}},
    {"name": "eager", "cat": "ch3", "ph": "E", "ts": 1.000, "pid": 0, "tid": 0},
    {"name": "allreduce", "cat": "coll", "ph": "b", "ts": 1.000, "pid": 0, "tid": 0, "id": 7},
    {"name": "recv tag=3", "cat": "event", "ph": "i", "ts": 1.500, "pid": 0, "tid": 1, "s": "t"},
    {"name": "allreduce", "cat": "coll", "ph": "e", "ts": 1.500, "pid": 0, "tid": 0, "id": 7},
    {"name": "gc/young", "cat": "gc", "ph": "B", "ts": 1.500, "pid": 0, "tid": 1000},
    {"name": "gc/young", "cat": "gc", "ph": "E", "ts": 1.750, "pid": 0, "tid": 1000}
]
}|}

let test_chrome_golden () =
  let env = fresh_env () in
  let trace = Trace.enable env in
  Trace.span_begin env ~rank:0 ~cat:"ch3" ~name:"eager"
    ~args:[ ("dst", "1"); ("bytes", "64") ] ();
  Env.charge env 1000.0;
  Trace.span_end env ~rank:0 ~cat:"ch3" ~name:"eager" ();
  Trace.span_begin env ~id:7 ~rank:0 ~cat:"coll" ~name:"allreduce" ();
  Env.charge env 500.0;
  Trace.record env ~rank:1 ~op:"recv" ~detail:"tag=3";
  Trace.span_end env ~id:7 ~rank:0 ~cat:"coll" ~name:"allreduce" ();
  Trace.span_begin env ~rank:(-1) ~cat:"gc" ~name:"gc/young" ();
  Env.charge env 250.0;
  Trace.span_end env ~rank:(-1) ~cat:"gc" ~name:"gc/young" ();
  Alcotest.(check string) "golden chrome json" (golden ^ "\n")
    (Trace.to_chrome_json trace);
  Trace.disable env

(* With a topology, each node is a Chrome process: pid = node id, named
   "node N", and every rank's events carry its node's pid — Perfetto
   then groups the timelines by machine. *)
let golden_topo =
  {|{
"displayTimeUnit": "ms",
"traceEvents": [
    {"name": "process_name", "ph": "M", "pid": 0, "tid": 0, "args": {"name": "node 0"}},
    {"name": "process_name", "ph": "M", "pid": 1, "tid": 0, "args": {"name": "node 1"}},
    {"name": "thread_name", "ph": "M", "pid": 0, "tid": 1000, "args": {"name": "runtime"}},
    {"name": "thread_name", "ph": "M", "pid": 0, "tid": 1, "args": {"name": "rank 1"}},
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 2, "args": {"name": "rank 2"}},
    {"name": "thread_name", "ph": "M", "pid": 1, "tid": 3, "args": {"name": "rank 3"}},
    {"name": "send tag=1", "cat": "event", "ph": "i", "ts": 0.000, "pid": 0, "tid": 1, "s": "t"},
    {"name": "recv tag=1", "cat": "event", "ph": "i", "ts": 0.500, "pid": 1, "tid": 2, "s": "t"},
    {"name": "eager", "cat": "ch3", "ph": "B", "ts": 0.500, "pid": 1, "tid": 3, "args": {"dst": "0"}},
    {"name": "eager", "cat": "ch3", "ph": "E", "ts": 1.500, "pid": 1, "tid": 3},
    {"name": "gc/young", "cat": "gc", "ph": "B", "ts": 1.500, "pid": 0, "tid": 1000},
    {"name": "gc/young", "cat": "gc", "ph": "E", "ts": 1.750, "pid": 0, "tid": 1000}
]
}|}

let test_chrome_golden_topo () =
  let env = fresh_env () in
  let trace = Trace.enable env in
  Trace.record env ~rank:1 ~op:"send" ~detail:"tag=1";
  Env.charge env 500.0;
  Trace.record env ~rank:2 ~op:"recv" ~detail:"tag=1";
  Trace.span_begin env ~rank:3 ~cat:"ch3" ~name:"eager"
    ~args:[ ("dst", "0") ] ();
  Env.charge env 1000.0;
  Trace.span_end env ~rank:3 ~cat:"ch3" ~name:"eager" ();
  Trace.span_begin env ~rank:(-1) ~cat:"gc" ~name:"gc/young" ();
  Env.charge env 250.0;
  Trace.span_end env ~rank:(-1) ~cat:"gc" ~name:"gc/young" ();
  Alcotest.(check string) "golden chrome json with topology"
    (golden_topo ^ "\n")
    (Trace.to_chrome_json ~topo:(Simtime.Topology.make ~nodes:2 ~cores:2)
       trace);
  Trace.disable env

(* ------------------------------------------------------------------ *)
(* Overflow repair: once the ring buffer has wrapped, some span begins *)
(* are gone. The exporter must still emit only matched pairs.          *)
(* ------------------------------------------------------------------ *)

let count_substring haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go acc i =
    if i + nl > hl then acc
    else if String.sub haystack i nl = needle then go (acc + 1) (i + 1)
    else go acc (i + 1)
  in
  go 0 0

let test_overflow_pairs () =
  let env = fresh_env () in
  let trace = Trace.enable ~capacity:8 env in
  (* 20 sync spans + 10 async spans: far more than 8 slots, so the
     buffer wraps and orphan ends land at the front of the window. *)
  for i = 1 to 20 do
    Trace.span_begin env ~rank:0 ~cat:"ch3" ~name:"eager" ();
    Env.charge env (float_of_int i);
    Trace.span_end env ~rank:0 ~cat:"ch3" ~name:"eager" ()
  done;
  for i = 1 to 10 do
    Trace.span_begin env ~id:i ~rank:1 ~cat:"coll" ~name:"bcast" ();
    Env.charge env 10.0;
    Trace.span_end env ~id:i ~rank:1 ~cat:"coll" ~name:"bcast" ()
  done;
  (* A dangling begin: the exporter must close it, not drop the pair. *)
  Trace.span_begin env ~rank:0 ~cat:"ch3" ~name:"rndv" ();
  Alcotest.(check bool) "buffer overflowed" true (Trace.dropped trace > 0);
  let json = Trace.to_chrome_json trace in
  Alcotest.(check int) "sync begins match ends"
    (count_substring json "\"ph\": \"B\"")
    (count_substring json "\"ph\": \"E\"");
  Alcotest.(check int) "async begins match ends"
    (count_substring json "\"ph\": \"b\"")
    (count_substring json "\"ph\": \"e\"");
  Alcotest.(check bool) "dangling begin exported" true
    (count_substring json "\"rndv\"" > 0);
  Trace.disable env

(* ------------------------------------------------------------------ *)
(* Snapshot diff                                                        *)
(* ------------------------------------------------------------------ *)

let test_snapshot_diff () =
  let stats = Stats.create () in
  Stats.add stats "msgs" 5;
  Stats.observe stats "lat" 100.0;
  Stats.observe stats "lat" 200.0;
  let before = Stats.snapshot stats in
  Stats.add stats "msgs" 3;
  Stats.incr stats "other";
  Stats.observe stats "lat" 400.0;
  let after = Stats.snapshot stats in
  let d = Stats.diff after before in
  Alcotest.(check int) "counter delta" 3 (Stats.counter_value d "msgs");
  Alcotest.(check int) "new counter" 1 (Stats.counter_value d "other");
  (match Stats.hist_summary d "lat" with
  | None -> Alcotest.fail "lat histogram missing from diff"
  | Some s ->
      Alcotest.(check int) "hist count delta" 1 s.Stats.n;
      Alcotest.(check (float 0.001)) "hist sum delta" 400.0 s.Stats.sum);
  (* A self-diff is all zeros. *)
  let z = Stats.diff after after in
  Alcotest.(check int) "self-diff counter" 0 (Stats.counter_value z "msgs");
  (match Stats.hist_summary z "lat" with
  | Some s -> Alcotest.(check int) "self-diff hist" 0 s.Stats.n
  | None -> ());
  (* The JSON form is stable and mentions both sections. *)
  let json = Stats.to_json after in
  Alcotest.(check bool) "json has counters" true
    (count_substring json "\"counters\"" = 1);
  Alcotest.(check bool) "json has histograms" true
    (count_substring json "\"histograms\"" = 1);
  Alcotest.(check string) "json deterministic" json (Stats.to_json after)

(* ------------------------------------------------------------------ *)
(* Lifecycle: enabling tracing installs a probe sink; disabling must   *)
(* remove both registrations, and balanced spans leave no residue.     *)
(* ------------------------------------------------------------------ *)

let test_no_leaks () =
  let traces0 = Trace.registered () in
  let sinks0 = Probe.installed () in
  for _ = 1 to 50 do
    let env = fresh_env () in
    let trace = Trace.enable env in
    Trace.with_span env ~rank:0 ~cat:"ch3" ~name:"eager" (fun () ->
        Env.charge env 10.0);
    Trace.span_begin env ~id:1 ~rank:0 ~cat:"coll" ~name:"bcast" ();
    Trace.span_end env ~id:1 ~rank:0 ~cat:"coll" ~name:"bcast" ();
    Alcotest.(check int) "spans balanced" 0 (Trace.open_spans trace);
    Trace.disable env
  done;
  Alcotest.(check int) "traces released" traces0 (Trace.registered ());
  Alcotest.(check int) "probe sinks released" sinks0 (Probe.installed ())

let test_with_span_on_raise () =
  let env = fresh_env () in
  let trace = Trace.enable env in
  (try
     Trace.with_span env ~rank:0 ~cat:"ch3" ~name:"eager" (fun () ->
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "span closed on raise" 0 (Trace.open_spans trace);
  Trace.disable env

let () =
  Alcotest.run "observability"
    [
      ( "chrome-trace",
        [
          Alcotest.test_case "golden json" `Quick test_chrome_golden;
          Alcotest.test_case "golden json with topology" `Quick
            test_chrome_golden_topo;
          Alcotest.test_case "overflow pair repair" `Quick
            test_overflow_pairs;
        ] );
      ( "stats",
        [ Alcotest.test_case "snapshot diff" `Quick test_snapshot_diff ] );
      ( "lifecycle",
        [
          Alcotest.test_case "no trace/probe leaks" `Quick test_no_leaks;
          Alcotest.test_case "with_span closes on raise" `Quick
            test_with_span_on_raise;
        ] );
    ]
