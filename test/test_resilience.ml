(* Process-failure resilience: fail-stop kills, heartbeat detection,
   ULFM-style revoke/agree/shrink recovery, detector false positives,
   rank revival, and checkpoint/restart up to the full Motor e2e flow
   (lose a rank mid-collective, shrink, restart it from a checkpoint,
   finish correctly). *)

module Mpi = Mpi_core.Mpi
module Fault = Mpi_core.Fault
module Ft = Mpi_core.Ft
module Coll = Mpi_core.Collectives
module Comm = Mpi_core.Comm
module Bv = Mpi_core.Buffer_view
module Env = Simtime.Env
module Key = Simtime.Stats.Key
module World = Motor.World
module Smp = Motor.System_mp
module Checkpoint = Motor.Checkpoint
module Ot = Motor.Object_transport
module Om = Vm.Object_model
module Gc = Vm.Gc
module Types = Vm.Types

(* Fast detector for tests: beats every 5us of virtual time, declares
   after 200us. Safe because a blocked rank still beats on every
   progress pump; only a rank that computes 200us without touching MPI
   is falsely declared (exactly what test_detector_false_positive
   wants). *)
let fast = { Ft.hb_period_ns = 5_000.0; hb_timeout_ns = 200_000.0 }

let kill_plan ?restart_after_ns ~rank ~at_ns () =
  Fault.plan ~kills:[ Fault.kill ?restart_after_ns ~rank ~at_ns () ] ()

let i64_buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  b

let i64_of b = Int64.to_int (Bytes.get_int64_le b 0)

(* ------------------------------------------------------------------ *)
(* Detection: point-to-point operations stop hanging                   *)
(* ------------------------------------------------------------------ *)

let test_kill_fails_pending_recv () =
  let got = ref None in
  let w =
    Mpi.run ~detector:fast
      ~fault:(kill_plan ~rank:1 ~at_ns:30_000.0 ())
      ~n:2
      (fun p ->
        let comm = Mpi.comm_world (Mpi.world_of p) in
        if Mpi.rank p = 0 then
          try
            ignore
              (Mpi.recv p ~comm ~src:1 ~tag:0 (Bv.of_bytes (Bytes.create 8)))
          with Ft.Proc_failed r -> got := Some r
        else
          (* Blocks forever; the kill tears the rank down instead. *)
          ignore
            (Mpi.recv p ~comm ~src:0 ~tag:0 (Bv.of_bytes (Bytes.create 8))))
  in
  Alcotest.(check (option int)) "recv failed with the dead peer" (Some 1) !got;
  Alcotest.(check (list int)) "rank 1 declared dead" [ 1 ] (Mpi.dead_ranks w);
  Alcotest.(check (list (pair int string)))
    "survivor state clean" [] (Mpi.quiescence_report w)

let test_send_to_dead_peer_fails_immediately () =
  let first = ref None in
  let second = ref None in
  ignore
    (Mpi.run ~detector:fast
       ~fault:(kill_plan ~rank:1 ~at_ns:30_000.0 ())
       ~n:2
       (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         if Mpi.rank p = 0 then begin
           (* First operation rides through detection; once the peer is
              declared, later operations must fail at entry, without
              waiting for another timeout. *)
           (try
              ignore
                (Mpi.recv p ~comm ~src:1 ~tag:0 (Bv.of_bytes (Bytes.create 8)))
            with Ft.Proc_failed r -> first := Some r);
           let before = Simtime.Clock.now_ns (Mpi.env (Mpi.world_of p)).Env.clock in
           (try Mpi.send p ~comm ~dst:1 ~tag:1 (Bv.of_bytes (i64_buf 7))
            with Ft.Proc_failed r -> second := Some r);
           let after = Simtime.Clock.now_ns (Mpi.env (Mpi.world_of p)).Env.clock in
           Alcotest.(check bool)
             "no second detection timeout paid" true
             (after -. before < fast.Ft.hb_timeout_ns)
         end
         else
           ignore
             (Mpi.recv p ~comm ~src:0 ~tag:0 (Bv.of_bytes (Bytes.create 8)))));
  Alcotest.(check (option int)) "pending recv failed" (Some 1) !first;
  Alcotest.(check (option int)) "fresh send failed at entry" (Some 1) !second

(* ------------------------------------------------------------------ *)
(* Revocation                                                          *)
(* ------------------------------------------------------------------ *)

let test_revoke_completes_blocked_peer () =
  let blocked = ref None in
  let fresh = ref None in
  let w =
    Mpi.run ~detector:fast ~n:2 (fun p ->
        let world = Mpi.comm_world (Mpi.world_of p) in
        let c = Mpi.comm_dup p world in
        if Mpi.rank p = 0 then begin
          (try
             ignore
               (Mpi.recv p ~comm:c ~src:1 ~tag:0 (Bv.of_bytes (Bytes.create 8)))
           with Ft.Revoked _ -> blocked := Some "revoked");
          (* The world communicator is untouched: normal traffic flows. *)
          ignore
            (Mpi.recv p ~comm:world ~src:1 ~tag:1
               (Bv.of_bytes (Bytes.create 8)))
        end
        else begin
          for _ = 1 to 40 do
            Fiber.yield ()
          done;
          Mpi.comm_revoke p c;
          (try Mpi.send p ~comm:c ~dst:0 ~tag:0 (Bv.of_bytes (i64_buf 1))
           with Ft.Revoked _ -> fresh := Some "revoked");
          Mpi.send p ~comm:world ~dst:0 ~tag:1 (Bv.of_bytes (i64_buf 2))
        end)
  in
  Alcotest.(check (option string))
    "blocked recv completed with Revoked" (Some "revoked") !blocked;
  Alcotest.(check (option string))
    "new op on revoked comm fails at entry" (Some "revoked") !fresh;
  Alcotest.(check (list (pair int string)))
    "no leaked state" [] (Mpi.quiescence_report w)

(* ------------------------------------------------------------------ *)
(* Agreement and shrink                                                *)
(* ------------------------------------------------------------------ *)

let test_agree_and_shrink_after_death () =
  (* Rank 0 — the agreement's internal root — dies first; the survivors
     must still agree (on the AND of their values), shrink, and compute
     over the shrunken communicator. *)
  let agreed = Array.make 3 (-1) in
  let shrunk_members = Array.make 3 [||] in
  let sums = Array.make 3 0 in
  let w =
    Mpi.run ~detector:fast
      ~fault:(kill_plan ~rank:0 ~at_ns:20_000.0 ())
      ~n:3
      (fun p ->
        let comm = Mpi.comm_world (Mpi.world_of p) in
        let me = Mpi.rank p in
        if me = 0 then
          ignore
            (Mpi.recv p ~comm ~src:1 ~tag:9 (Bv.of_bytes (Bytes.create 8)))
        else begin
          (try
             ignore
               (Mpi.recv p ~comm ~src:0 ~tag:0
                  (Bv.of_bytes (Bytes.create 8)))
           with Ft.Proc_failed _ -> ());
          let value = if me = 1 then 0b111 else 0b101 in
          agreed.(me) <- Mpi.comm_agree p comm ~value;
          let sub = Mpi.comm_shrink p comm in
          shrunk_members.(me) <- Comm.members sub;
          sums.(me) <-
            i64_of (Coll.allreduce p sub ~op:Coll.sum_i64 (i64_buf (me + 1)))
        end)
  in
  Alcotest.(check int) "rank 1 agreement" 0b101 agreed.(1);
  Alcotest.(check int) "rank 2 agreement" 0b101 agreed.(2);
  Array.iter
    (fun m ->
      if m <> [||] then
        Alcotest.(check (array int)) "survivors only" [| 1; 2 |] m)
    shrunk_members;
  Alcotest.(check int) "allreduce over shrunken comm" 5 sums.(1);
  Alcotest.(check int) "same on rank 2" 5 sums.(2);
  Alcotest.(check (list (pair int string)))
    "no leaked state" [] (Mpi.quiescence_report w)

(* ------------------------------------------------------------------ *)
(* Collective failure: the error surfaces at every member              *)
(* ------------------------------------------------------------------ *)

(* The canonical ULFM recovery loop: same call sequence on every rank,
   so agree/shrink epochs stay aligned even when only some ranks saw
   the failure directly. *)
let rec attempt p comm work =
  let result =
    try Some (work comm)
    with Ft.Proc_failed _ | Ft.Revoked _ ->
      Mpi.comm_revoke p comm;
      None
  in
  let flag = match result with Some _ -> 1 | None -> 0 in
  let agreed = Mpi.comm_agree p comm ~value:flag in
  if agreed land 1 = 1 then (comm, Option.get result)
  else begin
    Mpi.comm_revoke p comm;
    attempt p (Mpi.comm_shrink p comm) work
  end

let test_allreduce_survives_member_death () =
  let n = 4 in
  let sums = Array.make n 0 in
  let sizes = Array.make n 0 in
  let w =
    (* at_ns 1us: the victim's first MPI operation is the allreduce, so
       it dies exactly there — mid-collective, before contributing. *)
    Mpi.run ~detector:fast
      ~fault:(kill_plan ~rank:2 ~at_ns:1_000.0 ())
      ~n
      (fun p ->
        let comm = Mpi.comm_world (Mpi.world_of p) in
        let me = Mpi.rank p in
        let final, sum =
          attempt p comm (fun c ->
              i64_of (Coll.allreduce p c ~op:Coll.sum_i64 (i64_buf (me + 1))))
        in
        sums.(me) <- sum;
        sizes.(me) <- Comm.size final)
  in
  (* Survivors 0, 1, 3 contribute 1 + 2 + 4. *)
  List.iter
    (fun r ->
      Alcotest.(check int) (Printf.sprintf "rank %d sum" r) 7 sums.(r);
      Alcotest.(check int) (Printf.sprintf "rank %d size" r) 3 sizes.(r))
    [ 0; 1; 3 ];
  Alcotest.(check (list int)) "rank 2 dead" [ 2 ] (Mpi.dead_ranks w);
  Alcotest.(check (list (pair int string)))
    "no leaked schedules or requests" [] (Mpi.quiescence_report w)

(* ------------------------------------------------------------------ *)
(* Detector false positive: the planted-bug scenario as a unit test    *)
(* ------------------------------------------------------------------ *)

let test_detector_false_positive () =
  (* A timeout below the longest compute phase declares a live rank
     dead: rank 1 computes 500us without pumping progress and is
     declared at ~200us by rank 0's pumps. The explorer catches the
     same bug statistically (test_check); this pins the mechanism. *)
  let seen = ref None in
  (* "Compute": charge virtual time in slices, yielding between them so
     the peer's pumps interleave — exactly a rank busy in user code,
     beating on nothing. *)
  let compute p total =
    let env = Mpi.env (Mpi.world_of p) in
    for _ = 1 to 50 do
      Env.charge env (total /. 50.0);
      Fiber.yield ()
    done
  in
  (* The waiter polls nonblockingly (yielding between pumps) so the two
     fibers interleave round-robin — a blocked wait would let the
     computing fiber run its whole slice loop first. *)
  let poll_recv p ~comm b =
    let req = Mpi.irecv p ~comm ~src:1 ~tag:0 b in
    while not (Mpi.test p req) do
      Fiber.yield ()
    done;
    ignore (Mpi.wait p req)
  in
  let w =
    Mpi.run ~detector:fast ~n:2 (fun p ->
        let comm = Mpi.comm_world (Mpi.world_of p) in
        if Mpi.rank p = 0 then begin
          try poll_recv p ~comm (Bv.of_bytes (Bytes.create 8))
          with Ft.Proc_failed r -> seen := Some r
        end
        else compute p 500_000.0)
  in
  Alcotest.(check (option int)) "live rank declared dead" (Some 1) !seen;
  (match Mpi.ft_handle w with
  | Some ft ->
      Alcotest.(check bool) "detection recorded" true (Ft.detections ft <> [])
  | None -> Alcotest.fail "world should have a failure service");
  (* The same workload under the default detector (5ms timeout) has no
     false positive: the compute phase ends well inside the timeout and
     the exchange completes normally. *)
  let got = ref 0 in
  let w2 =
    Mpi.run ~detector:Ft.default_detector ~n:2 (fun p ->
        let comm = Mpi.comm_world (Mpi.world_of p) in
        if Mpi.rank p = 0 then begin
          let b = Bv.of_bytes (Bytes.create 8) in
          poll_recv p ~comm b;
          got := i64_of (Bv.read_all b)
        end
        else begin
          compute p 500_000.0;
          Mpi.send p ~comm ~dst:0 ~tag:0 (Bv.of_bytes (i64_buf 3))
        end)
  in
  Alcotest.(check int) "exchange completed" 3 !got;
  Alcotest.(check (list int))
    "defaults tolerate the compute phase" [] (Mpi.dead_ranks w2)

(* ------------------------------------------------------------------ *)
(* Revival                                                             *)
(* ------------------------------------------------------------------ *)

let test_revive_and_exchange () =
  let payload = ref 0 in
  let w =
    Mpi.run ~detector:fast
      ~fault:(kill_plan ~restart_after_ns:50_000.0 ~rank:1 ~at_ns:30_000.0 ())
      ~n:2
      (fun p ->
        let world = Mpi.world_of p in
        let comm = Mpi.comm_world world in
        if Mpi.rank p = 0 then begin
          (try
             ignore
               (Mpi.recv p ~comm ~src:1 ~tag:0 (Bv.of_bytes (Bytes.create 8)))
           with Ft.Proc_failed _ -> ());
          (* Restart the dead rank: re-admit it, then spawn its new
             incarnation (guarded, like any rank fiber). *)
          Mpi.revive_rank world 1;
          Fiber.spawn "rank1-restarted" (fun () ->
              Mpi.rank_guard world 1 (fun () ->
                  let p1 = Mpi.proc world 1 in
                  Mpi.send p1 ~comm ~dst:0 ~tag:7 (Bv.of_bytes (i64_buf 41))));
          let b = Bv.of_bytes (Bytes.create 8) in
          ignore (Mpi.recv p ~comm ~src:1 ~tag:7 b);
          payload := i64_of (Bv.read_all b)
        end
        else
          ignore
            (Mpi.recv p ~comm ~src:0 ~tag:0 (Bv.of_bytes (Bytes.create 8))))
  in
  Alcotest.(check int) "restarted incarnation's message" 41 !payload;
  Alcotest.(check (list int)) "nobody dead at the end" [] (Mpi.dead_ranks w);
  Alcotest.(check (list (pair int string)))
    "reliable layer reset cleanly" [] (Mpi.quiescence_report w)

(* ------------------------------------------------------------------ *)
(* Checkpoint/restart                                                  *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_roundtrip () =
  let store = Checkpoint.create_store ~interval:2 () in
  Alcotest.(check bool) "step 4 due" true (Checkpoint.due store ~step:4);
  Alcotest.(check bool) "step 5 not due" false (Checkpoint.due store ~step:5);
  let world = World.create ~n:1 () in
  World.run world (fun ctx ->
      let gc = World.gc ctx in
      let a = Om.alloc_array gc (Types.Eprim Types.R8) 4 in
      for i = 0 to 3 do
        Om.set_elem_float gc a i (float_of_int (10 * (i + 1)))
      done;
      let image = Checkpoint.save store ctx ~step:4 a in
      Alcotest.(check int) "image rank" 0 image.Checkpoint.i_rank;
      Alcotest.(check string)
        "image digest matches data"
        (Checkpoint.digest image.Checkpoint.i_data)
        image.Checkpoint.i_digest;
      (* Clobber the live state; restore must bring the image back. *)
      for i = 0 to 3 do
        Om.set_elem_float gc a i 0.0
      done;
      let root, step = Checkpoint.restore store ctx in
      Alcotest.(check int) "resume step" 4 step;
      for i = 0 to 3 do
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "restored elem %d" i)
          (float_of_int (10 * (i + 1)))
          (Om.get_elem_float gc root i)
      done;
      (* Round-trip stability: re-serializing the restored graph gives a
         digest-identical image. *)
      let again = Checkpoint.save store ctx ~step:6 root in
      Alcotest.(check string)
        "re-serialized digest equal" image.Checkpoint.i_digest
        again.Checkpoint.i_digest);
  Alcotest.(check int) "checkpoints counted" 2
    (Simtime.Stats.get (World.env world).Env.stats Key.checkpoints);
  Alcotest.(check int) "restores counted" 1
    (Simtime.Stats.get (World.env world).Env.stats Key.restores)

let test_checkpoint_refuses_inflight_image () =
  let store = Checkpoint.create_store () in
  let world = World.create ~n:2 () in
  World.run world (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      if World.rank ctx = 0 then begin
        let a = Om.alloc_array gc (Types.Eprim Types.R8) 2 in
        (* Save while a nonblocking collective is outstanding: the image
           records the in-flight state and restore must refuse it. *)
        let req = Smp.iallreduce_sum_f64 ctx ~comm a in
        ignore (Checkpoint.save store ctx ~step:1 a);
        Ot.wait_all ctx [ req ];
        (match Checkpoint.restore store ctx with
        | exception Invalid_argument msg ->
            Alcotest.(check bool) "refusal names the in-flight state" true
              (String.length msg > 0)
        | _ -> Alcotest.fail "restore should refuse an in-flight image")
      end
      else begin
        let a = Om.alloc_array gc (Types.Eprim Types.R8) 2 in
        Ot.wait_all ctx [ Smp.iallreduce_sum_f64 ctx ~comm a ]
      end)

(* ------------------------------------------------------------------ *)
(* The full Motor e2e: kill mid-collective, shrink, restart, finish    *)
(* ------------------------------------------------------------------ *)

let test_motor_e2e_kill_shrink_restart () =
  (* The full recovery story on a 4-rank Motor world: rank 2 dies just
     after contributing its round-1 data to a nonblocking allreduce, so
     the outcome is mixed — some survivors' schedules complete, one
     hangs on the dead rank and fails at detection. The uniform ULFM
     loop (agree on success, else revoke / roll back to the checkpoint /
     shrink / restart the victim / retry on the rejoined communicator)
     must bring all four ranks, the restarted incarnation included, to
     the same correct sums. The rollback is load-bearing: the survivors
     whose first attempt succeeded already hold a sum in their arrays,
     and only the checkpoint restore makes the retry's inputs right. *)
  let n = 4 in
  let victim = 2 in
  let elems = 8 in
  let store = Checkpoint.create_store () in
  let world =
    World.create ~n ~detector:fast
      ~fault:(kill_plan ~restart_after_ns:100_000.0 ~rank:victim
                ~at_ns:1_000.0 ())
      ()
  in
  let mw = World.mpi world in
  let final = Array.make n [||] in
  let recovered = Array.make n false in
  let fill gc a me =
    for i = 0 to elems - 1 do
      Om.set_elem_float gc a i (float_of_int ((me + 1) * (i + 1)))
    done
  in
  let rejoin_comm () =
    Comm.make
      ~ctx:(Mpi.alloc_context mw ~key:"rejoin/1")
      ~members:(Array.init n Fun.id)
  in
  (* The whole program, parameterized by rank context so the restarted
     incarnation runs the same code from its checkpoint. *)
  let rec program ctx ~restarted =
    let gc = World.gc ctx in
    let me = World.rank ctx in
    let a =
      ref
        (if restarted then begin
           (* Resume from the checkpoint, not from scratch. *)
           let root, step = Checkpoint.restore store ctx in
           Alcotest.(check int) "restarted from step 1" 1 step;
           root
         end
         else begin
           let a = Om.alloc_array gc (Types.Eprim Types.R8) elems in
           fill gc a me;
           (* Step 1: everyone checkpoints at the step boundary
              (quiescent), then enters the collective. *)
           ignore (Checkpoint.save store ctx ~step:1 a);
           a
         end)
    in
    let comm = ref (if restarted then rejoin_comm () else Smp.comm_world ctx) in
    let rec attempt () =
      let ok =
        match Ot.wait_all ctx [ Smp.iallreduce_sum_f64 ctx ~comm:!comm !a ] with
        | () -> 1
        | exception (Ft.Proc_failed _ | Ft.Revoked _) -> 0
      in
      (* Uniform recovery: every member runs the same agree, so ranks
         whose own schedule completed (they had the dead rank's round-1
         data) still learn that the collective failed somewhere. *)
      let agreed = Smp.comm_agree ctx ~comm:!comm ~value:ok in
      if agreed land 1 = 0 then begin
        recovered.(me) <- true;
        Smp.comm_revoke ctx !comm;
        (* The aborted schedule's conditional pin must not survive the
           next collection (pins are mark-phase-resolved: a collection
           drops requests whose operation completed, failed included). *)
        Gc.collect gc ~full:false;
        Alcotest.(check int)
          (Printf.sprintf "rank %d pin table empty after abort" me)
          0
          (Gc.conditional_pin_count gc);
        (* Coordinated rollback: the failed attempt may have written
           results into some ranks' arrays, so every member resets its
           state from the step-1 image. *)
        let root, _ = Checkpoint.restore store ctx in
        a := root;
        let sub = Smp.comm_shrink ctx !comm in
        Alcotest.(check (array int))
          "shrunk to survivors" [| 0; 1; 3 |] (Comm.members sub);
        (* The lowest survivor restarts the dead rank (guarded, like any
           rank fiber); the others wait at the barrier so nobody talks
           to the victim before it is re-admitted. *)
        if me = Comm.world_rank_of sub 0 then begin
          Mpi.revive_rank mw victim;
          let vctx = World.respawn_ctx world victim in
          Fiber.spawn
            (Printf.sprintf "motor-rank%d-restarted" victim)
            (fun () ->
              Mpi.rank_guard mw victim (fun () ->
                  program vctx ~restarted:true))
        end;
        Smp.barrier ctx sub;
        comm := rejoin_comm ();
        attempt ()
      end
    in
    attempt ();
    final.(me) <- Array.init elems (fun i -> Om.get_elem_float gc !a i);
    Gc.collect gc ~full:false;
    Alcotest.(check int)
      (Printf.sprintf "rank %d pin table empty at exit" me)
      0
      (Gc.conditional_pin_count gc)
  in
  World.run world (fun ctx -> program ctx ~restarted:false);
  (* All four ranks — the restarted one included — agree on the sum over
     all four contributions: (i+1) * (1+2+3+4). *)
  for r = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "rank %d finished" r)
      true
      (final.(r) <> [||]);
    Array.iteri
      (fun i v ->
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "rank %d elem %d" r i)
          (10.0 *. float_of_int (i + 1))
          v)
      final.(r)
  done;
  Alcotest.(check bool) "the recovery path actually ran" true
    (Array.exists Fun.id recovered);
  Alcotest.(check (list int)) "victim re-admitted" [] (Mpi.dead_ranks mw);
  Alcotest.(check (list (pair int string)))
    "world quiescent after recovery" [] (Mpi.quiescence_report mw);
  Alcotest.(check bool) "checkpoint was restored" true
    (Simtime.Stats.get (World.env world).Env.stats Key.restores >= 1)

let () =
  Alcotest.run "resilience"
    [
      ( "detection",
        [
          Alcotest.test_case "kill fails pending recv" `Quick
            test_kill_fails_pending_recv;
          Alcotest.test_case "send to dead peer fails at entry" `Quick
            test_send_to_dead_peer_fails_immediately;
          Alcotest.test_case "detector false positive" `Quick
            test_detector_false_positive;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "revoke completes blocked peer" `Quick
            test_revoke_completes_blocked_peer;
          Alcotest.test_case "agree and shrink after death" `Quick
            test_agree_and_shrink_after_death;
          Alcotest.test_case "allreduce survives member death" `Quick
            test_allreduce_survives_member_death;
          Alcotest.test_case "revive and exchange" `Quick
            test_revive_and_exchange;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "checkpoint roundtrip" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "restore refuses in-flight image" `Quick
            test_checkpoint_refuses_inflight_image;
          Alcotest.test_case "motor e2e: kill, shrink, restart" `Quick
            test_motor_e2e_kill_shrink_restart;
        ] );
    ]
