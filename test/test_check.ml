(* Schedule-exploration harness tests: the planted race is invisible to
   round-robin but caught by seeded random schedules and shrinks to a
   tiny replayable trace; the real workloads hold their invariants over
   a seed sweep; recorded traces reproduce runs exactly; the committed
   corpus replays with the expected outcomes. *)

module E = Check.Explore
module Policy = Check.Policy
module Corpus = Check.Corpus
module Shrink = Check.Shrink

let violations_line o =
  String.concat "; "
    (List.map
       (fun v -> Format.asprintf "%a" Check.Invariant.pp v)
       o.E.o_violations)

let check_clean what o =
  if E.failed o then
    Alcotest.failf "%s: unexpected violation(s): %s" what (violations_line o)

(* ------------------------------------------------------------------ *)
(* The planted bug                                                     *)
(* ------------------------------------------------------------------ *)

let planted = E.planted_bug ~buggy:true
let fixed = E.planted_bug ~buggy:false

let test_planted_bug_invisible_to_round_robin () =
  check_clean "planted bug under round-robin"
    (E.run_one planted Policy.Round_robin)

let first_failing_seed ?(max = 200) w =
  let rec go s =
    if s > max then None
    else
      let o = E.run_one w (Policy.Seeded_random s) in
      if E.failed o then Some (s, o) else go (s + 1)
  in
  go 1

let test_planted_bug_caught_by_random_schedules () =
  match first_failing_seed planted with
  | None ->
      Alcotest.fail "planted race not caught within 200 seeds"
  | Some (_, o) ->
      Alcotest.(check bool)
        "violation names the planted race" true
        (List.exists (fun v -> v.Check.Invariant.inv = "planted-race")
           o.E.o_violations)

let test_fixed_variant_passes_under_random_schedules () =
  for s = 1 to 50 do
    check_clean
      (Printf.sprintf "fixed counter under seed %d" s)
      (E.run_one fixed (Policy.Seeded_random s))
  done

let test_planted_bug_shrinks_to_small_replayable_trace () =
  match first_failing_seed planted with
  | None -> Alcotest.fail "planted race not caught within 200 seeds"
  | Some (seed, o) ->
      let mini = E.minimize_failure planted o.E.o_trace in
      Alcotest.(check bool)
        (Printf.sprintf "trace from seed %d shrinks to <= 25 decisions (got \
                         %d)"
           seed (List.length mini))
        true
        (List.length mini <= 25);
      (* The minimized schedule still loses the update... *)
      let replayed = E.run_one planted (Policy.Replay mini) in
      Alcotest.(check bool) "shrunk trace still fails" true
        (E.failed replayed);
      (* ...and the fix makes the same schedule pass. *)
      check_clean "fixed variant under the failing schedule"
        (E.run_one fixed (Policy.Replay mini))

(* ------------------------------------------------------------------ *)
(* The planted one-sided epoch bug                                     *)
(* ------------------------------------------------------------------ *)

let rma_buggy = E.rma_epoch_bug ~buggy:true
let rma_fixed = E.rma_epoch_bug ~buggy:false

let test_rma_epoch_bug_invisible_to_round_robin () =
  check_clean "rma epoch bug under round-robin"
    (E.run_one rma_buggy Policy.Round_robin)

let test_rma_epoch_bug_caught_and_shrunk () =
  match first_failing_seed rma_buggy with
  | None -> Alcotest.fail "rma epoch bug not caught within 200 seeds"
  | Some (seed, o) ->
      Alcotest.(check bool)
        "violation names the epoch discipline" true
        (List.exists
           (fun v -> v.Check.Invariant.inv = "rma-epoch")
           o.E.o_violations);
      let mini = E.minimize_failure rma_buggy o.E.o_trace in
      Alcotest.(check bool)
        (Printf.sprintf
           "trace from seed %d shrinks to <= 25 decisions (got %d)" seed
           (List.length mini))
        true
        (List.length mini <= 25);
      let replayed = E.run_one rma_buggy (Policy.Replay mini) in
      Alcotest.(check bool) "shrunk trace still fails" true (E.failed replayed);
      check_clean "deferred-apply variant under the failing schedule"
        (E.run_one rma_fixed (Policy.Replay mini))

let test_rma_fixed_passes_under_random_schedules () =
  for s = 1 to 20 do
    check_clean
      (Printf.sprintf "deferred apply under seed %d" s)
      (E.run_one rma_fixed (Policy.Seeded_random s))
  done

(* ------------------------------------------------------------------ *)
(* The planted detector bug                                            *)
(* ------------------------------------------------------------------ *)

let test_planted_detector_bug_caught_and_shrunk () =
  let buggy = E.planted_detector_bug ~buggy:true in
  (* Unlike the planted race, the misconfigured detector fails under
     every schedule — including the round-robin baseline. *)
  let base = E.run_one buggy Policy.Round_robin in
  Alcotest.(check bool)
    "violation names the planted detector bug" true
    (List.exists
       (fun v -> v.Check.Invariant.inv = "planted-detector")
       base.E.o_violations);
  let mini = E.minimize_failure buggy base.E.o_trace in
  let replayed = E.run_one buggy (Policy.Replay mini) in
  Alcotest.(check bool) "shrunk trace still fails" true (E.failed replayed);
  check_clean "fixed detector under the failing schedule"
    (E.run_one (E.planted_detector_bug ~buggy:false) (Policy.Replay mini))

let test_fixed_detector_passes_under_random_schedules () =
  let fixed = E.planted_detector_bug ~buggy:false in
  for s = 1 to 10 do
    check_clean
      (Printf.sprintf "sane detector under seed %d" s)
      (E.run_one fixed (Policy.Seeded_random s))
  done

(* ------------------------------------------------------------------ *)
(* Rank death under the recovery loop                                  *)
(* ------------------------------------------------------------------ *)

let test_kill_workloads_clean_over_seeds_and_faults () =
  let report =
    E.explore ~faults:true ~workloads:(E.kill_workloads ()) ~seeds:8 ()
  in
  List.iter
    (fun o ->
      Alcotest.failf "%s under %s%s: %s" o.E.o_workload
        (Policy.name o.E.o_policy)
        (match o.E.o_fault_seed with
        | Some s -> Printf.sprintf " x fault(seed=%d)" s
        | None -> "")
        (violations_line o))
    report.E.r_failures

let test_survivor_convergence_oracle () =
  let module I = Check.Invariant in
  let names vs = List.map (fun v -> v.I.inv) vs in
  (* Converged: both survivors agree; the dead rank 2 reported nothing. *)
  Alcotest.(check (list string))
    "agreement passes" []
    (names
       (I.survivor_convergence ~survivors:[ 0; 1 ]
          [ (0, [| 0; 1 |], "3"); (1, [| 0; 1 |], "3") ]));
  (* A member that died after the last attempt may linger in the
     membership; survivors still agree. *)
  Alcotest.(check (list string))
    "stale membership naming the dead rank still passes" []
    (names
       (I.survivor_convergence ~survivors:[ 0; 1 ]
          [ (0, [| 0; 1; 2 |], "6"); (1, [| 0; 1; 2 |], "6") ]));
  let bad reports = names (I.survivor_convergence ~survivors:[ 0; 1 ] reports) in
  Alcotest.(check bool)
    "missing report flagged" true
    (bad [ (0, [| 0; 1 |], "3") ] <> []);
  Alcotest.(check bool)
    "value disagreement flagged" true
    (bad [ (0, [| 0; 1 |], "3"); (1, [| 0; 1 |], "4") ] <> []);
  Alcotest.(check bool)
    "membership disagreement flagged" true
    (bad [ (0, [| 0; 1 |], "3"); (1, [| 0; 1; 2 |], "3") ] <> []);
  Alcotest.(check bool)
    "non-member reporter flagged" true
    (bad [ (0, [| 1 |], "3"); (1, [| 1 |], "3") ] <> [])

(* ------------------------------------------------------------------ *)
(* Exploration of the real workloads                                   *)
(* ------------------------------------------------------------------ *)

let test_explorer_clean_on_default_workloads () =
  let report =
    E.explore ~quick:true ~faults:true ~workloads:(E.default_workloads ())
      ~seeds:10 ()
  in
  List.iter
    (fun o ->
      Alcotest.failf "%s under %s%s: %s" o.E.o_workload
        (Policy.name o.E.o_policy)
        (match o.E.o_fault_seed with
        | Some s -> Printf.sprintf " x fault(seed=%d)" s
        | None -> "")
        (violations_line o))
    report.E.r_failures;
  Alcotest.(check int)
    "one baseline per workload" 7
    (List.length report.E.r_baselines)

let test_record_replay_reproduces_digest () =
  let w = Option.get (E.find "ring") in
  let original = E.run_one ~quick:true w (Policy.Seeded_random 42) in
  check_clean "ring under seed 42" original;
  let replayed =
    E.run_one ~quick:true w (Policy.Replay original.E.o_trace)
  in
  check_clean "ring replay" replayed;
  Alcotest.(check string)
    "replay reproduces the digest" original.E.o_digest replayed.E.o_digest

(* ------------------------------------------------------------------ *)
(* Shrinker                                                            *)
(* ------------------------------------------------------------------ *)

let test_shrinker_minimizes_synthetic_predicate () =
  (* Fails iff decisions 3 and 11 both survive with nonzero values; the
     minimal failing trace keeps exactly those two (zeros elsewhere are
     stripped or truncated away). *)
  let fails ds =
    let a = Array.of_list ds in
    let get i = if i < Array.length a then a.(i) else 0 in
    get 3 = 7 && get 11 = 2
  in
  let noisy = [ 5; 1; 4; 7; 9; 2; 6; 8; 1; 3; 5; 2; 4; 4; 9; 1; 7; 3 ] in
  Alcotest.(check bool) "synthetic trace fails" true (fails noisy);
  let mini = Shrink.minimize ~fails noisy in
  Alcotest.(check bool) "minimized trace still fails" true (fails mini);
  Alcotest.(check (list int))
    "only the two load-bearing decisions survive"
    [ 0; 0; 0; 7; 0; 0; 0; 0; 0; 0; 0; 2 ]
    mini

(* ------------------------------------------------------------------ *)
(* Corpus                                                              *)
(* ------------------------------------------------------------------ *)

let test_corpus_round_trip () =
  let entry =
    {
      Corpus.c_workload = "ring";
      c_expect = Corpus.Must_pass;
      c_note = "round-trip test";
      c_fault = Some 17;
      c_decisions = [ 0; 3; 1; 0; 2 ];
    }
  in
  Alcotest.(check bool)
    "entry survives to_string/of_string" true
    (Corpus.of_string (Corpus.to_string entry) = entry);
  let bare = { entry with Corpus.c_note = ""; c_fault = None } in
  Alcotest.(check bool)
    "optional fields survive omission" true
    (Corpus.of_string (Corpus.to_string bare) = bare)

let test_corpus_rejects_malformed () =
  let bad s =
    match Corpus.of_string s with
    | exception Failure _ -> ()
    | _ -> Alcotest.failf "malformed corpus accepted: %S" s
  in
  bad "";
  bad "workload ring\ndecisions 0";
  bad "# motor schedule trace v1\nworkload ring\nexpect maybe\ndecisions 0";
  bad "# motor schedule trace v1\nworkload ring\nexpect fail\ndecisions x"

let test_committed_corpus_replays () =
  let dir = "corpus" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".trace")
    |> List.sort compare
  in
  Alcotest.(check bool)
    "corpus is not empty" true (files <> []);
  List.iter
    (fun f ->
      let entry = Corpus.load ~path:(Filename.concat dir f) in
      match E.replay_entry entry with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "%s: %s" f msg)
    files

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "check"
    [
      ( "planted bug",
        [
          Alcotest.test_case "invisible to round-robin" `Quick
            test_planted_bug_invisible_to_round_robin;
          Alcotest.test_case "caught by random schedules" `Quick
            test_planted_bug_caught_by_random_schedules;
          Alcotest.test_case "fixed variant passes" `Quick
            test_fixed_variant_passes_under_random_schedules;
          Alcotest.test_case "shrinks to a small replayable trace" `Quick
            test_planted_bug_shrinks_to_small_replayable_trace;
        ] );
      ( "rma epoch bug",
        [
          Alcotest.test_case "invisible to round-robin" `Quick
            test_rma_epoch_bug_invisible_to_round_robin;
          Alcotest.test_case "caught by random schedules and shrunk" `Quick
            test_rma_epoch_bug_caught_and_shrunk;
          Alcotest.test_case "deferred-apply variant passes" `Quick
            test_rma_fixed_passes_under_random_schedules;
        ] );
      ( "planted detector bug",
        [
          Alcotest.test_case "caught at baseline and shrunk" `Quick
            test_planted_detector_bug_caught_and_shrunk;
          Alcotest.test_case "fixed detector passes" `Quick
            test_fixed_detector_passes_under_random_schedules;
        ] );
      ( "rank death",
        [
          Alcotest.test_case "kill workloads clean over seeds x faults"
            `Quick test_kill_workloads_clean_over_seeds_and_faults;
          Alcotest.test_case "survivor-convergence oracle" `Quick
            test_survivor_convergence_oracle;
        ] );
      ( "exploration",
        [
          Alcotest.test_case "default workloads clean over seeds x faults"
            `Quick test_explorer_clean_on_default_workloads;
          Alcotest.test_case "record/replay reproduces digest" `Quick
            test_record_replay_reproduces_digest;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "minimizes a synthetic predicate" `Quick
            test_shrinker_minimizes_synthetic_predicate;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "entry round-trips" `Quick
            test_corpus_round_trip;
          Alcotest.test_case "malformed entries rejected" `Quick
            test_corpus_rejects_malformed;
          Alcotest.test_case "committed traces replay as expected" `Quick
            test_committed_corpus_replays;
        ] );
    ]
