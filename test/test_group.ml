(* Tests for MPI process groups and group-derived communicators. *)

module Mpi = Mpi_core.Mpi
module Comm = Mpi_core.Comm
module Group = Mpi_core.Group
module Coll = Mpi_core.Collectives
module Bv = Mpi_core.Buffer_view

let g = Group.of_ranks

let test_set_algebra () =
  let a = g [ 0; 1; 2; 3 ] and b = g [ 2; 3; 4; 5 ] in
  Alcotest.(check (array int)) "union" [| 0; 1; 2; 3; 4; 5 |]
    (Group.members (Group.union a b));
  Alcotest.(check (array int)) "intersection" [| 2; 3 |]
    (Group.members (Group.intersection a b));
  Alcotest.(check (array int)) "difference" [| 0; 1 |]
    (Group.members (Group.difference a b));
  Alcotest.(check (array int)) "incl reorders" [| 3; 1 |]
    (Group.members (Group.incl a [ 3; 1 ]));
  Alcotest.(check (array int)) "excl preserves order" [| 0; 2 |]
    (Group.members (Group.excl a [ 1; 3 ]))

let test_identity_and_similarity () =
  let a = g [ 1; 2; 3 ] in
  Alcotest.(check bool) "equal to itself" true (Group.equal a (g [ 1; 2; 3 ]));
  Alcotest.(check bool) "not equal when reordered" false
    (Group.equal a (g [ 3; 2; 1 ]));
  Alcotest.(check bool) "similar when reordered" true
    (Group.similar a (g [ 3; 2; 1 ]));
  Alcotest.(check bool) "not similar when different" false
    (Group.similar a (g [ 1; 2 ]))

let test_rank_mapping () =
  let a = g [ 5; 2; 9 ] in
  Alcotest.(check (option int)) "world 2 is group 1" (Some 1)
    (Group.rank_of a 2);
  Alcotest.(check (option int)) "world 7 absent" None (Group.rank_of a 7);
  Alcotest.(check int) "group 2 is world 9" 9 (Group.world_rank a 2)

let test_validation () =
  Alcotest.check_raises "duplicates rejected"
    (Invalid_argument "Group.of_ranks: duplicate rank") (fun () ->
      ignore (g [ 1; 1 ]));
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Group.of_ranks: negative rank") (fun () ->
      ignore (g [ -1 ]))

let test_comm_create () =
  let n = 5 in
  ignore
    (Mpi.run ~n (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         let world_group = Group.of_comm comm in
         (* Sub-communicator over the even world ranks, reversed. *)
         let sub_group = Group.incl world_group [ 4; 2; 0 ] in
         match Group.comm_create p comm sub_group with
         | Some sub ->
             Alcotest.(check bool) "only members get it" true
               (Mpi.rank p mod 2 = 0);
             Alcotest.(check (array int)) "ordering honoured" [| 4; 2; 0 |]
               (Comm.members sub);
             (* Use it: broadcast from sub-rank 0 (world rank 4). *)
             let b = Bytes.create 4 in
             if Mpi.rank p = 4 then Bytes.set_int32_le b 0 77l;
             Coll.bcast p sub ~root:0 (Bv.of_bytes b);
             Alcotest.(check int) "sub bcast" 77
               (Int32.to_int (Bytes.get_int32_le b 0))
         | None ->
             Alcotest.(check bool) "non-members get none" true
               (Mpi.rank p mod 2 = 1)))

let test_comm_create_outside_comm_rejected () =
  ignore
    (Mpi.run ~n:2 (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         try
           ignore (Group.comm_create p comm (g [ 0; 7 ]));
           Alcotest.fail "expected Invalid_argument"
         with Invalid_argument _ -> ()))

let prop_set_algebra_laws =
  QCheck.Test.make ~name:"group algebra laws" ~count:100
    QCheck.(pair (list (int_range 0 15)) (list (int_range 0 15)))
    (fun (xs, ys) ->
      let mk l = g (List.sort_uniq compare l) in
      let a = mk xs and b = mk ys in
      let sorted grp = List.sort compare (Array.to_list (Group.members grp)) in
      (* |A u B| = |A| + |B| - |A n B| *)
      Group.size (Group.union a b) + Group.size (Group.intersection a b)
      = Group.size a + Group.size b
      (* A \ B and A n B partition A *)
      && sorted a
         = List.sort compare
             (Array.to_list (Group.members (Group.difference a b))
             @ Array.to_list (Group.members (Group.intersection a b)))
      (* union is similar to the flipped union *)
      && Group.similar (Group.union a b) (Group.union b a))

let () =
  Alcotest.run "group"
    [
      ( "algebra",
        [
          Alcotest.test_case "set operations" `Quick test_set_algebra;
          Alcotest.test_case "identity vs similarity" `Quick
            test_identity_and_similarity;
          Alcotest.test_case "rank mapping" `Quick test_rank_mapping;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "comm_create",
        [
          Alcotest.test_case "derive and use" `Quick test_comm_create;
          Alcotest.test_case "outside members rejected" `Quick
            test_comm_create_outside_comm_rejected;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_set_algebra_laws ]);
    ]
