(* Integration tests for the Motor core: VM-integrated MPI with the
   pinning policy, the object-transport integrity rules, the custom
   serializer (Transportable traversal, identity, split representation),
   the OO operations, the buffer pool, and managed MIL programs doing
   message passing — the paper's full stack. *)

module World = Motor.World
module Ot = Motor.Object_transport
module Smp = Motor.System_mp
module Ser = Motor.Serializer
module Pin = Motor.Pinning
module Pool = Motor.Buffer_pool
module Om = Vm.Object_model
module Gc = Vm.Gc
module Heap = Vm.Heap
module Classes = Vm.Classes
module Types = Vm.Types
module Key = Simtime.Stats.Key
module Tm = Mpi_core.Tag_match

let stats w = (World.env w).Simtime.Env.stats

(* The paper's LinkedArray (Figure 5): data and next propagate, next2 does
   not. *)
let linked_array_class registry =
  match Classes.find_by_name registry "LinkedArray" with
  | Some mt -> mt
  | None ->
      let id = Classes.declare registry ~name:"LinkedArray" in
      let arr = Classes.array_class registry (Types.Eprim Types.I4) in
      Classes.complete registry id ~transportable:true
        ~fields:
          [
            ("array", Types.Ref arr.Classes.c_id, true);
            ("next", Types.Ref id, true);
            ("next2", Types.Ref id, false);
          ]
        ()

let build_list gc mt ~elems ~ints_per_node =
  let farray = Classes.field mt "array" in
  let fnext = Classes.field mt "next" in
  let head = ref (Om.null gc) in
  for i = elems - 1 downto 0 do
    let node = Om.alloc_instance gc mt in
    let arr = Om.alloc_array gc (Types.Eprim Types.I4) ints_per_node in
    for j = 0 to ints_per_node - 1 do
      Om.set_elem_int gc arr j ((i * 1000) + j)
    done;
    Om.set_ref gc node farray (Some arr);
    Om.free gc arr;
    if not (Om.is_null gc !head) then begin
      Om.set_ref gc node fnext (Some !head);
      Om.free gc !head
    end;
    head := node
  done;
  !head

let list_contents gc mt head =
  let farray = Classes.field mt "array" in
  let fnext = Classes.field mt "next" in
  let out = ref [] in
  let cur = ref (Gc.Handle.alloc gc (Om.addr_of gc head)) in
  let continue_ = ref true in
  while !continue_ do
    (match Om.get_ref gc !cur farray with
    | Some arr ->
        let n = Om.array_length gc arr in
        let vals = List.init n (fun j -> Om.get_elem_int gc arr j) in
        out := vals :: !out;
        Om.free gc arr
    | None -> out := [] :: !out);
    match Om.get_ref gc !cur fnext with
    | Some next ->
        Om.free gc !cur;
        cur := next
    | None -> continue_ := false
  done;
  Om.free gc !cur;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Regular (zero-copy) object transport                                 *)
(* ------------------------------------------------------------------ *)

let test_array_roundtrip () =
  let w = World.create ~n:2 () in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      if World.rank ctx = 0 then begin
        let a = Om.alloc_array gc (Types.Eprim Types.R8) 100 in
        for i = 0 to 99 do
          Om.set_elem_float gc a i (float_of_int i *. 0.5)
        done;
        Ot.send ctx ~comm ~dst:1 ~tag:0 a
      end
      else begin
        let a = Om.alloc_array gc (Types.Eprim Types.R8) 100 in
        let st = Ot.recv ctx ~comm ~src:0 ~tag:0 a in
        Alcotest.(check int) "800 bytes" 800 st.Mpi_core.Status.bytes;
        for i = 0 to 99 do
          Alcotest.(check (float 0.0))
            (Printf.sprintf "elem %d" i)
            (float_of_int i *. 0.5)
            (Om.get_elem_float gc a i)
        done
      end)

let test_plain_object_roundtrip () =
  let w = World.create ~n:2 () in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      let mt =
        Classes.define (World.registry ctx) ~name:"Vec3"
          ~fields:
            [
              ("x", Types.Prim Types.R8, false);
              ("y", Types.Prim Types.R8, false);
              ("z", Types.Prim Types.R8, false);
            ]
          ()
      in
      let o = Om.alloc_instance gc mt in
      if World.rank ctx = 0 then begin
        Om.set_float gc o (Classes.field mt "x") 1.0;
        Om.set_float gc o (Classes.field mt "y") 2.0;
        Om.set_float gc o (Classes.field mt "z") 3.0;
        Ot.send ctx ~comm ~dst:1 ~tag:0 o
      end
      else begin
        ignore (Ot.recv ctx ~comm ~src:0 ~tag:0 o);
        Alcotest.(check (float 0.0)) "y field" 2.0
          (Om.get_float gc o (Classes.field mt "y"))
      end)

let test_range_transfer () =
  let w = World.create ~n:2 () in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      let a = Om.alloc_array gc (Types.Eprim Types.I4) 10 in
      if World.rank ctx = 0 then begin
        for i = 0 to 9 do
          Om.set_elem_int gc a i (100 + i)
        done;
        (* Send elements [3..7). *)
        Ot.send_range ctx ~comm ~dst:1 ~tag:0 a ~offset:3 ~count:4
      end
      else begin
        (* Receive into elements [6..10). *)
        ignore (Ot.recv_range ctx ~comm ~src:0 ~tag:0 a ~offset:6 ~count:4);
        Alcotest.(check (list int)) "offset landing"
          [ 0; 0; 0; 0; 0; 0; 103; 104; 105; 106 ]
          (List.init 10 (fun i -> Om.get_elem_int gc a i))
      end)

let test_refful_object_rejected () =
  let w = World.create ~n:1 () in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      let mt = linked_array_class (World.registry ctx) in
      let o = Om.alloc_instance gc mt in
      (* Objects with reference fields may not use the regular ops: that is
         how Motor protects object-model integrity (Section 4.2.1). *)
      try
        Ot.send ctx ~comm ~dst:0 ~tag:0 o;
        Alcotest.fail "expected Transport_error"
      with Ot.Transport_error _ -> ())

let test_ref_array_rejected () =
  let w = World.create ~n:1 () in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      let mt = linked_array_class (World.registry ctx) in
      let a = Om.alloc_array gc (Types.Eref mt.Classes.c_id) 3 in
      try
        Ot.send ctx ~comm ~dst:0 ~tag:0 a;
        Alcotest.fail "expected Transport_error"
      with Ot.Transport_error _ -> ())

let test_oversized_message_rejected () =
  (try
     let w = World.create ~n:2 () in
     World.run w (fun ctx ->
         let gc = World.gc ctx in
         let comm = Smp.comm_world ctx in
         if World.rank ctx = 0 then begin
           let a = Om.alloc_array gc (Types.Eprim Types.I4) 16 in
           Ot.send ctx ~comm ~dst:1 ~tag:0 a
         end
         else begin
           let a = Om.alloc_array gc (Types.Eprim Types.I4) 4 in
           ignore (Ot.recv ctx ~comm ~src:0 ~tag:0 a)
         end);
     Alcotest.fail "expected truncation error"
   with Mpi_core.Ch3.Mpi_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Pinning policy                                                      *)
(* ------------------------------------------------------------------ *)

let ping_pong_world policy =
  let config = { World.default_config with policy } in
  let w = World.create ~config ~n:2 () in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      let a = Om.alloc_array gc (Types.Eprim Types.I4) 64 in
      for _ = 1 to 20 do
        if World.rank ctx = 0 then begin
          Ot.send ctx ~comm ~dst:1 ~tag:0 a;
          ignore (Ot.recv ctx ~comm ~src:1 ~tag:0 a)
        end
        else begin
          ignore (Ot.recv ctx ~comm ~src:0 ~tag:0 a);
          Ot.send ctx ~comm ~dst:0 ~tag:0 a
        end
      done);
  w

let test_always_pin_pins_every_op () =
  let w = ping_pong_world Pin.Always_pin in
  (* 20 iterations x 2 ops x 2 ranks = 80 operations. *)
  Alcotest.(check int) "80 pins" 80 (Simtime.Stats.get (stats w) Key.pins);
  Alcotest.(check int) "80 unpins" 80 (Simtime.Stats.get (stats w) Key.unpins)

let test_deferred_policy_avoids_pins () =
  let w = ping_pong_world Pin.Deferred in
  let pins = Simtime.Stats.get (stats w) Key.pins in
  let avoided =
    Simtime.Stats.get (stats w) Key.pins_avoided
    + Simtime.Stats.get (stats w) Key.pins_deferred
  in
  (* Eager blocking sends complete before the polling wait, so their
     deferred pins are never taken; only the receives (which really wait
     on the wire) pin. Always-pin does 80; deferred at most 40. *)
  Alcotest.(check bool)
    (Printf.sprintf "at most half the pins of always-pin (%d)" pins)
    true (pins <= 40);
  Alcotest.(check bool)
    (Printf.sprintf "every send avoided its pin (%d avoided)" avoided)
    true (avoided >= 40)

let test_elder_objects_never_pin () =
  let config = { World.default_config with policy = Pin.Boundary_check } in
  let w = World.create ~config ~n:2 () in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      let a = Om.alloc_array gc (Types.Eprim Types.I4) 64 in
      (* Promote the buffer to the elder generation first. *)
      Gc.collect gc ~full:false;
      Alcotest.(check bool) "promoted" false
        (Heap.in_young (Gc.heap gc) (Om.addr_of gc a));
      if World.rank ctx = 0 then begin
        Ot.send ctx ~comm ~dst:1 ~tag:0 a;
        ignore (Ot.recv ctx ~comm ~src:1 ~tag:0 a)
      end
      else begin
        ignore (Ot.recv ctx ~comm ~src:0 ~tag:0 a);
        Ot.send ctx ~comm ~dst:0 ~tag:0 a
      end);
  Alcotest.(check int) "zero pins" 0 (Simtime.Stats.get (stats w) Key.pins);
  Alcotest.(check int) "all four ops avoided" 4
    (Simtime.Stats.get (stats w) Key.pins_avoided)

let test_conditional_pin_protects_irecv () =
  (* A non-blocking receive into a young object, with a GC triggered while
     the transfer is outstanding: the conditional pin must hold the buffer
     in place until the data lands, then evaporate. *)
  let w = World.create ~n:2 () in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      if World.rank ctx = 0 then begin
        (* Delay the send so the receiver's GC happens mid-operation. *)
        for _ = 1 to 5 do
          Fiber.yield ()
        done;
        let a = Om.alloc_array gc (Types.Eprim Types.I4) 32 in
        for i = 0 to 31 do
          Om.set_elem_int gc a i (i * 3)
        done;
        Ot.send ctx ~comm ~dst:1 ~tag:0 a
      end
      else begin
        let a = Om.alloc_array gc (Types.Eprim Types.I4) 32 in
        Alcotest.(check bool) "buffer starts young" true
          (Heap.in_young (Gc.heap gc) (Om.addr_of gc a));
        let addr0 = Om.addr_of gc a in
        let req = Ot.irecv ctx ~comm ~src:0 ~tag:0 a in
        Alcotest.(check int) "conditional pin registered" 1
          (Gc.conditional_pin_count gc);
        (* Collection while the operation is outstanding. *)
        Gc.collect gc ~full:false;
        Alcotest.(check int) "buffer held in place" addr0 (Om.addr_of gc a);
        ignore (Ot.wait ctx req);
        Alcotest.(check int) "payload intact" 93 (Om.get_elem_int gc a 31);
        (* Next collection drops the request. The object itself was
           promoted in place when its pinned young block was reassigned to
           the elder generation, so its address never changes again (the
           elder generation is not compacted). *)
        Gc.collect gc ~full:false;
        Alcotest.(check int) "request dropped after completion" 0
          (Gc.conditional_pin_count gc);
        Alcotest.(check bool) "promoted out of the young generation" false
          (Heap.in_young (Gc.heap gc) (Om.addr_of gc a));
        Alcotest.(check int) "promoted in place, not copied" addr0
          (Om.addr_of gc a)
      end)

let test_conditional_pin_protects_iallreduce () =
  (* The collective version of the same claim: a GC forced while an
     iallreduce schedule is in flight must poll the collective's
     generalized request (kind Coll_req) through the conditional pin,
     hold the Motor buffer in place for the completion write-back, and
     drop the pin at the first collection after completion. *)
  let n = 4 in
  let w = World.create ~n () in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      let me = World.rank ctx in
      if me = 0 then
        (* Stagger rank 0: recursive doubling needs every contribution,
           so no other rank's schedule can finish before rank 0 joins —
           their collections below run against genuinely in-flight
           requests. *)
        for _ = 1 to 5 do
          Fiber.yield ()
        done;
      let elems = 64 in
      let a = Om.alloc_array gc (Types.Eprim Types.R8) elems in
      for i = 0 to elems - 1 do
        Om.set_elem_float gc a i (float_of_int ((me + 1) * (i + 1)))
      done;
      Alcotest.(check bool) "buffer starts young" true
        (Heap.in_young (Gc.heap gc) (Om.addr_of gc a));
      let addr0 = Om.addr_of gc a in
      let req = Smp.iallreduce_sum_f64 ctx ~comm a in
      if me <> 0 then begin
        Alcotest.(check int) "conditional pin registered" 1
          (Gc.conditional_pin_count gc);
        Alcotest.(check bool) "still in flight" false (Ot.test ctx req);
        (* Collection while the schedule is outstanding. *)
        Gc.collect gc ~full:false;
        Alcotest.(check int) "buffer held in place" addr0 (Om.addr_of gc a)
      end;
      Ot.wait_all ctx [ req ];
      (* sum over ranks of (r+1)*(i+1) = (i+1) * n(n+1)/2. *)
      let scale = float_of_int (n * (n + 1) / 2) in
      for i = 0 to elems - 1 do
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "elem %d" i)
          (scale *. float_of_int (i + 1))
          (Om.get_elem_float gc a i)
      done;
      Gc.collect gc ~full:false;
      Alcotest.(check int) "pin dropped after completion" 0
        (Gc.conditional_pin_count gc));
  Alcotest.(check (list (pair int string)))
    "world quiescent" []
    (Mpi_core.Mpi.quiescence_report (World.mpi w))

let test_no_pin_policy_corrupts () =
  (* The honest DMA model: without pinning, a collection during an
     outstanding receive moves the buffer and the data lands at the stale
     address — the crash scenario of Section 2.3. *)
  let config = { World.default_config with policy = Pin.No_pin } in
  let w = World.create ~config ~n:2 () in
  let corrupted = ref false in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      if World.rank ctx = 0 then begin
        for _ = 1 to 5 do
          Fiber.yield ()
        done;
        let a = Om.alloc_array gc (Types.Eprim Types.I4) 32 in
        for i = 0 to 31 do
          Om.set_elem_int gc a i 7
        done;
        Ot.send ctx ~comm ~dst:1 ~tag:0 a
      end
      else begin
        let a = Om.alloc_array gc (Types.Eprim Types.I4) 32 in
        let req = Ot.irecv ctx ~comm ~src:0 ~tag:0 a in
        Gc.collect gc ~full:false;  (* moves the buffer: no pin held it *)
        ignore (Ot.wait ctx req);
        if Om.get_elem_int gc a 31 <> 7 then corrupted := true
      end);
  Alcotest.(check bool) "data lost without pinning" true !corrupted


let test_rendezvous_send_pins_once () =
  (* A blocking send above the eager threshold must enter its polling wait
     (waiting for CTS), so the deferred pin is taken exactly once and
     released at completion. *)
  let w = World.create ~n:2 () in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      if World.rank ctx = 0 then begin
        let a = Om.alloc_array gc (Types.Eprim Types.I1) 8192 in
        Alcotest.(check bool) "young buffer" true
          (Heap.in_young (Gc.heap gc) (Om.addr_of gc a));
        (* Force rendezvous regardless of size. *)
        Ot.ssend ctx ~comm ~dst:1 ~tag:0 a
      end
      else begin
        for _ = 1 to 10 do
          Fiber.yield ()
        done;
        let a = Om.alloc_array gc (Types.Eprim Types.I1) 8192 in
        ignore (Ot.recv ctx ~comm ~src:0 ~tag:0 a)
      end);
  let stats = stats w in
  Alcotest.(check bool) "sender pinned in its wait" true
    (Simtime.Stats.get stats Key.pins >= 1);
  Alcotest.(check int) "all pins released" 
    (Simtime.Stats.get stats Key.pins)
    (Simtime.Stats.get stats Key.unpins)

let test_boundary_check_nonblocking_unpins_on_completion () =
  (* Under Boundary_check the non-blocking path takes a sticky pin and
     registers an unpin on the request's completion callback — the
     "test and release" flavour. *)
  let config = { World.default_config with policy = Pin.Boundary_check } in
  let w = World.create ~config ~n:2 () in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      if World.rank ctx = 0 then begin
        let a = Om.alloc_array gc (Types.Eprim Types.I4) 16 in
        Ot.send ctx ~comm ~dst:1 ~tag:0 a
      end
      else begin
        let a = Om.alloc_array gc (Types.Eprim Types.I4) 16 in
        let req = Ot.irecv ctx ~comm ~src:0 ~tag:0 a in
        Alcotest.(check int) "pinned while outstanding" 1
          (Gc.pinned_count gc);
        ignore (Ot.wait ctx req);
        Alcotest.(check int) "unpinned at completion" 0
          (Gc.pinned_count gc)
      end)


(* ------------------------------------------------------------------ *)
(* Serializer                                                          *)
(* ------------------------------------------------------------------ *)

let with_runtime f =
  let rt = Vm.Runtime.create () in
  f rt.Vm.Runtime.gc rt.Vm.Runtime.registry

let test_serializer_roundtrip_list () =
  with_runtime (fun gc registry ->
      let mt = linked_array_class registry in
      let head = build_list gc mt ~elems:5 ~ints_per_node:3 in
      let data = Ser.serialize gc ~visited:Ser.Linear head in
      (* 5 nodes + 5 arrays. *)
      Alcotest.(check int) "object count" 10 (Ser.object_count data);
      let copy = Ser.deserialize gc data in
      Alcotest.(check bool) "fresh object" false (Om.same_object gc copy head);
      let expected = list_contents gc mt head in
      Alcotest.(check (list (list int))) "contents equal" expected
        (list_contents gc mt copy))

let test_serializer_nulls_non_transportable () =
  with_runtime (fun gc registry ->
      let mt = linked_array_class registry in
      let fnext2 = Classes.field mt "next2" in
      let a = Om.alloc_instance gc mt in
      let b = Om.alloc_instance gc mt in
      Om.set_ref gc a fnext2 (Some b);
      let copy = Ser.deserialize gc (Ser.serialize gc ~visited:Ser.Linear a) in
      Alcotest.(check bool) "next2 not propagated" true
        (Om.get_ref gc copy fnext2 = None);
      (* Only the root travelled: b was reachable solely through next2. *)
      Alcotest.(check int) "one object" 1
        (Ser.object_count (Ser.serialize gc ~visited:Ser.Linear a)))

let test_serializer_cycle () =
  with_runtime (fun gc registry ->
      let mt = linked_array_class registry in
      let fnext = Classes.field mt "next" in
      let a = Om.alloc_instance gc mt in
      Om.set_ref gc a fnext (Some a);
      let data = Ser.serialize gc ~visited:Ser.Linear a in
      Alcotest.(check int) "cycle is one object" 1 (Ser.object_count data);
      let copy = Ser.deserialize gc data in
      match Om.get_ref gc copy fnext with
      | Some n ->
          Alcotest.(check bool) "cycle rebuilt" true (Om.same_object gc n copy)
      | None -> Alcotest.fail "cycle lost")

let test_serializer_shared_identity () =
  with_runtime (fun gc registry ->
      let mt = linked_array_class registry in
      let fnext = Classes.field mt "next" in
      let fa = Classes.field mt "array" in
      (* a.next = b; a.array == b.array (shared). *)
      let a = Om.alloc_instance gc mt in
      let b = Om.alloc_instance gc mt in
      let shared = Om.alloc_array gc (Types.Eprim Types.I4) 4 in
      Om.set_ref gc a fnext (Some b);
      Om.set_ref gc a fa (Some shared);
      Om.set_ref gc b fa (Some shared);
      let copy = Ser.deserialize gc (Ser.serialize gc ~visited:Ser.Linear a) in
      let ca = Option.get (Om.get_ref gc copy fa) in
      let cb = Option.get (Om.get_ref gc copy fnext) in
      let cba = Option.get (Om.get_ref gc cb fa) in
      Alcotest.(check bool) "sharing preserved" true (Om.same_object gc ca cba))

let test_serializer_md_array () =
  with_runtime (fun gc _registry ->
      let m = Om.alloc_md_array gc (Types.Eprim Types.R8) [| 2; 3 |] in
      for i = 0 to 5 do
        Om.set_elem_float gc m i (float_of_int i +. 0.25)
      done;
      let copy = Ser.deserialize gc (Ser.serialize gc ~visited:Ser.Linear m) in
      Alcotest.(check (array int)) "dims" [| 2; 3 |] (Om.md_dims gc copy);
      Alcotest.(check (float 0.0)) "payload" 5.25 (Om.get_elem_float gc copy 5))

let test_serializer_null_root () =
  with_runtime (fun gc _ ->
      let n = Om.null gc in
      let copy = Ser.deserialize gc (Ser.serialize gc ~visited:Ser.Linear n) in
      Alcotest.(check bool) "null root" true (Om.is_null gc copy))

let test_linear_and_hashed_agree () =
  with_runtime (fun gc registry ->
      let mt = linked_array_class registry in
      let head = build_list gc mt ~elems:12 ~ints_per_node:2 in
      let a = Ser.serialize gc ~visited:Ser.Linear head in
      let b = Ser.serialize gc ~visited:Ser.Hashed head in
      Alcotest.(check bytes) "identical representations" a b)

let test_linear_visited_quadratic_probes () =
  with_runtime (fun gc registry ->
      let mt = linked_array_class registry in
      let env = Vm.Heap.env (Gc.heap gc) in
      let probes_for n =
        Simtime.Stats.reset env.Simtime.Env.stats;
        let head = build_list gc mt ~elems:n ~ints_per_node:1 in
        ignore (Ser.serialize gc ~visited:Ser.Linear head);
        Simtime.Stats.get env.Simtime.Env.stats Key.visited_probes
      in
      let p100 = probes_for 100 in
      let p400 = probes_for 400 in
      (* Quadratic: 4x the objects, ~16x the probes. *)
      let ratio = float_of_int p400 /. float_of_int p100 in
      Alcotest.(check bool)
        (Printf.sprintf "probe ratio %.1f in [10, 22]" ratio)
        true
        (ratio > 10.0 && ratio < 22.0))

let test_split_sizes () =
  with_runtime (fun gc registry ->
      let mt = linked_array_class registry in
      let arr = Om.alloc_array gc (Types.Eref mt.Classes.c_id) 10 in
      for i = 0 to 9 do
        let node = Om.alloc_instance gc mt in
        Om.set_elem_ref gc arr i (Some node);
        Om.free gc node
      done;
      let parts = Ser.split gc ~visited:Ser.Linear arr ~parts:4 in
      Alcotest.(check (list int)) "3+3+2+2 elements"
        [ 4; 4; 3; 3 ]
        (* each segment: sub-array root + its nodes *)
        (Array.to_list (Array.map Ser.object_count parts));
      (* Each part deserializes standalone. *)
      let p0 = Ser.deserialize gc parts.(0) in
      Alcotest.(check int) "first segment has 3 elements" 3
        (Om.array_length gc p0))

let test_split_concat_roundtrip () =
  with_runtime (fun gc registry ->
      let mt = linked_array_class registry in
      let fa = Classes.field mt "array" in
      let arr = Om.alloc_array gc (Types.Eref mt.Classes.c_id) 7 in
      for i = 0 to 6 do
        let node = Om.alloc_instance gc mt in
        let data = Om.alloc_array gc (Types.Eprim Types.I4) 1 in
        Om.set_elem_int gc data 0 (i * 11);
        Om.set_ref gc node fa (Some data);
        Om.set_elem_ref gc arr i (Some node);
        Om.free gc node;
        Om.free gc data
      done;
      let parts = Ser.split gc ~visited:Ser.Linear arr ~parts:3 in
      let roots =
        Array.to_list (Array.map (fun p -> Ser.deserialize gc p) parts)
      in
      let combined = Ser.concat_arrays gc roots in
      Alcotest.(check int) "combined length" 7 (Om.array_length gc combined);
      for i = 0 to 6 do
        let node = Option.get (Om.get_elem_ref gc combined i) in
        let data = Option.get (Om.get_ref gc node fa) in
        Alcotest.(check int)
          (Printf.sprintf "element %d in order" i)
          (i * 11)
          (Om.get_elem_int gc data 0)
      done)

(* ------------------------------------------------------------------ *)
(* OO operations across ranks                                          *)
(* ------------------------------------------------------------------ *)

let test_osend_orecv () =
  let w = World.create ~n:2 () in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      let mt = linked_array_class (World.registry ctx) in
      if World.rank ctx = 0 then begin
        let head = build_list gc mt ~elems:6 ~ints_per_node:4 in
        Smp.osend ctx ~comm ~dst:1 ~tag:0 head
      end
      else begin
        let obj, st = Smp.orecv ctx ~comm ~src:0 ~tag:0 in
        Alcotest.(check int) "from rank 0" 0 st.Mpi_core.Status.source;
        let contents = list_contents gc mt obj in
        Alcotest.(check int) "six nodes" 6 (List.length contents);
        Alcotest.(check (list int)) "first node payload"
          [ 0; 1; 2; 3 ] (List.hd contents)
      end)

let test_obcast () =
  let w = World.create ~n:4 () in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      let mt = linked_array_class (World.registry ctx) in
      let input =
        if World.rank ctx = 2 then
          Some (build_list gc mt ~elems:3 ~ints_per_node:2)
        else None
      in
      let obj = Smp.obcast ctx ~comm ~root:2 input in
      let contents = list_contents gc mt obj in
      Alcotest.(check int)
        (Printf.sprintf "rank %d got 3 nodes" (World.rank ctx))
        3 (List.length contents))

let test_oscatter_ogather () =
  let n = 4 in
  let w = World.create ~n () in
  World.run w (fun ctx ->
      let gc = World.gc ctx in
      let comm = Smp.comm_world ctx in
      let registry = World.registry ctx in
      let mt = linked_array_class registry in
      let fa = Classes.field mt "array" in
      let r = World.rank ctx in
      let input =
        if r = 0 then begin
          (* 10 work items; item i carries value i. *)
          let arr = Om.alloc_array gc (Types.Eref mt.Classes.c_id) 10 in
          for i = 0 to 9 do
            let node = Om.alloc_instance gc mt in
            let data = Om.alloc_array gc (Types.Eprim Types.I4) 1 in
            Om.set_elem_int gc data 0 i;
            Om.set_ref gc node fa (Some data);
            Om.set_elem_ref gc arr i (Some node);
            Om.free gc node;
            Om.free gc data
          done;
          Some arr
        end
        else None
      in
      (* Scatter: ranks get 3,3,2,2 items. *)
      let mine = Smp.oscatter ctx ~comm ~root:0 input in
      let expected_len = if r < 2 then 3 else 2 in
      Alcotest.(check int)
        (Printf.sprintf "rank %d share" r)
        expected_len
        (Om.array_length gc mine);
      (* Process: multiply every value by 10. *)
      for i = 0 to Om.array_length gc mine - 1 do
        let node = Option.get (Om.get_elem_ref gc mine i) in
        let data = Option.get (Om.get_ref gc node fa) in
        Om.set_elem_int gc data 0 (Om.get_elem_int gc data 0 * 10);
        Om.free gc node;
        Om.free gc data
      done;
      (* Gather the processed items back, in order. *)
      match Smp.ogather ctx ~comm ~root:0 mine with
      | Some combined ->
          Alcotest.(check int) "root is rank 0" 0 r;
          Alcotest.(check int) "all items back" 10
            (Om.array_length gc combined);
          for i = 0 to 9 do
            let node = Option.get (Om.get_elem_ref gc combined i) in
            let data = Option.get (Om.get_ref gc node fa) in
            Alcotest.(check int)
              (Printf.sprintf "item %d processed" i)
              (i * 10)
              (Om.get_elem_int gc data 0)
          done
      | None -> Alcotest.(check bool) "non-root" true (r <> 0))

(* ------------------------------------------------------------------ *)
(* Buffer pool                                                          *)
(* ------------------------------------------------------------------ *)

let test_buffer_pool_reuse () =
  let rt = Vm.Runtime.create () in
  let pool = Pool.create rt.Vm.Runtime.gc in
  let b1 = Pool.acquire pool 1000 in
  Pool.release pool b1;
  let b2 = Pool.acquire pool 500 in
  Alcotest.(check bool) "recycled the larger buffer" true (b1 == b2);
  Pool.release pool b2;
  let env = rt.Vm.Runtime.env in
  Alcotest.(check int) "one creation" 1
    (Simtime.Stats.get env.Simtime.Env.stats Key.buffers_created);
  Alcotest.(check int) "one reuse" 1
    (Simtime.Stats.get env.Simtime.Env.stats Key.buffers_reused)

let test_buffer_pool_reaped_at_gc () =
  let rt = Vm.Runtime.create () in
  let gc = rt.Vm.Runtime.gc in
  let pool = Pool.create gc in
  let b = Pool.acquire pool 256 in
  Pool.release pool b;
  Alcotest.(check int) "pooled" 1 (Pool.pooled pool);
  (* Used at epoch 0; still within one collection of its last use. *)
  Gc.collect gc ~full:false;
  Alcotest.(check int) "survives first gc" 1 (Pool.pooled pool);
  (* Unused since the previous collection: reaped now. *)
  Gc.collect gc ~full:false;
  Alcotest.(check int) "reaped at second gc" 0 (Pool.pooled pool);
  Alcotest.(check int) "reap counted" 1
    (Simtime.Stats.get rt.Vm.Runtime.env.Simtime.Env.stats Key.buffers_reaped)

(* ------------------------------------------------------------------ *)
(* Managed MIL programs doing MPI                                       *)
(* ------------------------------------------------------------------ *)

let mil_pingpong =
  {|
  .method void main() {
    .locals (int32[] buf, int64 me, int64 i)
    intcall mp.rank
    stloc me
    ldc.i8 8
    newarr int32
    stloc buf
    ldloc me
    ldc.i8 0
    ceq
    brfalse receiver

    // rank 0: fill the buffer and play 5 rounds of ping-pong
    ldloc buf
    ldc.i8 0
    ldc.i8 42
    stelem int32
    ldc.i8 0
    stloc i
  send_loop:
    ldloc i
    ldc.i8 5
    clt
    brfalse finish
    ldloc buf
    ldc.i8 1
    ldc.i8 0
    intcall mp.send
    ldloc buf
    ldc.i8 1
    ldc.i8 0
    intcall mp.recv
    ldloc i
    ldc.i8 1
    add
    stloc i
    br send_loop

  receiver:
    ldc.i8 0
    stloc i
  recv_loop:
    ldloc i
    ldc.i8 5
    clt
    brfalse finish
    ldloc buf
    ldc.i8 0
    ldc.i8 0
    intcall mp.recv
    // increment slot 0 before sending it back
    ldloc buf
    ldc.i8 0
    ldloc buf
    ldc.i8 0
    ldelem int32
    ldc.i8 1
    add
    stelem int32
    ldloc buf
    ldc.i8 0
    ldc.i8 0
    intcall mp.send
    ldloc i
    ldc.i8 1
    add
    stloc i
    br recv_loop

  finish:
    ldloc buf
    ldc.i8 0
    ldelem int32
    intcall sys.print_i
    intcall sys.print_nl
    ret
  }
|}

let test_mil_managed_pingpong () =
  let w = World.create ~n:2 () in
  let outputs = Array.make 2 "" in
  World.run w (fun ctx ->
      let interp = Motor.Mil_bindings.load ctx mil_pingpong in
      ignore (Vm.Interp.run_entry interp []);
      outputs.(World.rank ctx) <- Vm.Runtime.output ctx.World.rt);
  (* 42 incremented once per round on rank 1: both end at 47. *)
  Alcotest.(check string) "rank 0 final value" "47\n" outputs.(0);
  Alcotest.(check string) "rank 1 final value" "47\n" outputs.(1)

let test_mil_managed_object_transport () =
  let src =
    {|
  .class transportable Cell {
    .field transportable int32[] data
    .field transportable Cell next
  }

  .method void main() {
    .locals (Cell head, Cell second, object got, int64 me)
    intcall mp.rank
    stloc me
    ldloc me
    ldc.i8 0
    ceq
    brfalse receiver

    // build a 2-cell list and OSend it
    newobj Cell
    stloc head
    newobj Cell
    stloc second
    ldloc head
    ldloc second
    stfld Cell::next
    ldloc head
    ldc.i8 4
    newarr int32
    stfld Cell::data
    ldloc head
    ldc.i8 1
    ldc.i8 3
    intcall mp.osend
    ret

  receiver:
    ldc.i8 0
    ldc.i8 3
    intcall mp.orecv
    stloc got
    ldc.i8 1
    intcall sys.print_i
    intcall sys.print_nl
    ret
  }
|}
  in
  let w = World.create ~n:2 () in
  let ok = ref "" in
  World.run w (fun ctx ->
      let interp = Motor.Mil_bindings.load ctx src in
      ignore (Vm.Interp.run_entry interp []);
      if World.rank ctx = 1 then ok := Vm.Runtime.output ctx.World.rt);
  Alcotest.(check string) "managed orecv completed" "1\n" !ok

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_serializer_roundtrip_random_lists =
  QCheck.Test.make ~name:"serializer roundtrips random lists" ~count:40
    QCheck.(pair (int_range 0 30) (int_range 0 8))
    (fun (elems, ints) ->
      with_runtime (fun gc registry ->
          let mt = linked_array_class registry in
          if elems = 0 then true
          else begin
            let head = build_list gc mt ~elems ~ints_per_node:ints in
            let copy =
              Ser.deserialize gc (Ser.serialize gc ~visited:Ser.Hashed head)
            in
            list_contents gc mt head = list_contents gc mt copy
          end))

let prop_split_preserves_order_and_count =
  QCheck.Test.make ~name:"split covers all elements in order" ~count:40
    QCheck.(pair (int_range 1 40) (int_range 1 8))
    (fun (len, parts) ->
      let parts = min parts len in
      with_runtime (fun gc registry ->
          let mt = linked_array_class registry in
          let fa = Classes.field mt "array" in
          let arr = Om.alloc_array gc (Types.Eref mt.Classes.c_id) len in
          for i = 0 to len - 1 do
            let node = Om.alloc_instance gc mt in
            let data = Om.alloc_array gc (Types.Eprim Types.I4) 1 in
            Om.set_elem_int gc data 0 i;
            Om.set_ref gc node fa (Some data);
            Om.set_elem_ref gc arr i (Some node);
            Om.free gc node;
            Om.free gc data
          done;
          let segs = Ser.split gc ~visited:Ser.Hashed arr ~parts in
          let roots =
            Array.to_list (Array.map (fun s -> Ser.deserialize gc s) segs)
          in
          let combined = Ser.concat_arrays gc roots in
          Om.array_length gc combined = len
          && List.for_all
               (fun i ->
                 let node = Option.get (Om.get_elem_ref gc combined i) in
                 let data = Option.get (Om.get_ref gc node fa) in
                 Om.get_elem_int gc data 0 = i)
               (List.init len (fun i -> i))))


let prop_buffer_pool_always_adequate =
  QCheck.Test.make ~name:"pool buffers always satisfy the request" ~count:80
    QCheck.(list (int_range 1 4096))
    (fun sizes ->
      let rt = Vm.Runtime.create () in
      let pool = Pool.create rt.Vm.Runtime.gc in
      List.for_all
        (fun size ->
          let b = Pool.acquire pool size in
          let ok = Bytes.length b >= size in
          Pool.release pool b;
          ok)
        sizes)

let () =
  Alcotest.run "motor"
    [
      ( "regular transport",
        [
          Alcotest.test_case "array roundtrip" `Quick test_array_roundtrip;
          Alcotest.test_case "plain object roundtrip" `Quick
            test_plain_object_roundtrip;
          Alcotest.test_case "array range transfer" `Quick
            test_range_transfer;
          Alcotest.test_case "refful object rejected" `Quick
            test_refful_object_rejected;
          Alcotest.test_case "ref array rejected" `Quick
            test_ref_array_rejected;
          Alcotest.test_case "oversized message rejected" `Quick
            test_oversized_message_rejected;
        ] );
      ( "pinning",
        [
          Alcotest.test_case "always-pin pins every op" `Quick
            test_always_pin_pins_every_op;
          Alcotest.test_case "deferred policy avoids pins" `Quick
            test_deferred_policy_avoids_pins;
          Alcotest.test_case "elder objects never pin" `Quick
            test_elder_objects_never_pin;
          Alcotest.test_case "conditional pin protects irecv" `Quick
            test_conditional_pin_protects_irecv;
          Alcotest.test_case "conditional pin protects in-flight iallreduce"
            `Quick test_conditional_pin_protects_iallreduce;
          Alcotest.test_case "no-pin policy corrupts (DMA model)" `Quick
            test_no_pin_policy_corrupts;
          Alcotest.test_case "rendezvous send pins once" `Quick
            test_rendezvous_send_pins_once;
          Alcotest.test_case "boundary-check unpins at completion" `Quick
            test_boundary_check_nonblocking_unpins_on_completion;
        ] );
      ( "serializer",
        [
          Alcotest.test_case "roundtrip linked list" `Quick
            test_serializer_roundtrip_list;
          Alcotest.test_case "non-transportable refs become null" `Quick
            test_serializer_nulls_non_transportable;
          Alcotest.test_case "cycles" `Quick test_serializer_cycle;
          Alcotest.test_case "shared identity preserved" `Quick
            test_serializer_shared_identity;
          Alcotest.test_case "multidimensional arrays" `Quick
            test_serializer_md_array;
          Alcotest.test_case "null root" `Quick test_serializer_null_root;
          Alcotest.test_case "linear and hashed agree" `Quick
            test_linear_and_hashed_agree;
          Alcotest.test_case "linear visited is quadratic" `Quick
            test_linear_visited_quadratic_probes;
          Alcotest.test_case "split sizes" `Quick test_split_sizes;
          Alcotest.test_case "split/concat roundtrip" `Quick
            test_split_concat_roundtrip;
        ] );
      ( "oo operations",
        [
          Alcotest.test_case "osend/orecv" `Quick test_osend_orecv;
          Alcotest.test_case "obcast" `Quick test_obcast;
          Alcotest.test_case "oscatter/ogather" `Quick
            test_oscatter_ogather;
        ] );
      ( "buffer pool",
        [
          Alcotest.test_case "reuse" `Quick test_buffer_pool_reuse;
          Alcotest.test_case "reaped at gc" `Quick
            test_buffer_pool_reaped_at_gc;
        ] );
      ( "managed programs",
        [
          Alcotest.test_case "MIL ping-pong over mp.send/recv" `Quick
            test_mil_managed_pingpong;
          Alcotest.test_case "MIL object transport over mp.osend" `Quick
            test_mil_managed_object_transport;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_serializer_roundtrip_random_lists;
          QCheck_alcotest.to_alcotest prop_split_preserves_order_and_count;
          QCheck_alcotest.to_alcotest prop_buffer_pool_always_adequate;
        ] );
    ]
