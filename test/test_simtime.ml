(* Unit tests for the simtime substrate: clock, cost presets, stats. *)

module Clock = Simtime.Clock
module Cost = Simtime.Cost
module Stats = Simtime.Stats
module Env = Simtime.Env

let test_clock_advance () =
  let c = Clock.create () in
  Alcotest.(check (float 0.0)) "starts at zero" 0.0 (Clock.now_ns c);
  Clock.advance c 1500.0;
  Alcotest.(check (float 1e-9)) "advanced" 1500.0 (Clock.now_ns c);
  Alcotest.(check (float 1e-9)) "microseconds" 1.5 (Clock.now_us c);
  Clock.reset c;
  Alcotest.(check (float 0.0)) "reset" 0.0 (Clock.now_ns c)

let test_clock_negative () =
  let c = Clock.create () in
  Alcotest.check_raises "negative charge rejected"
    (Invalid_argument "Clock.advance: negative charge") (fun () ->
      Clock.advance c (-1.0))

let test_clock_elapsed () =
  let c = Clock.create () in
  Clock.advance c 100.0;
  let t0 = Clock.now_ns c in
  Clock.advance c 250.0;
  Alcotest.(check (float 1e-9)) "elapsed" 250.0 (Clock.elapsed_since c t0)

let test_cost_presets_distinct () =
  let names = List.map (fun c -> c.Cost.name) Cost.all_presets in
  let sorted = List.sort_uniq compare names in
  Alcotest.(check int) "preset names unique" (List.length names)
    (List.length sorted)

let test_cost_native_has_no_vm_overheads () =
  let c = Cost.native_cpp in
  Alcotest.(check (float 0.0)) "no fcall" 0.0 c.Cost.fcall_ns;
  Alcotest.(check (float 0.0)) "no pinvoke" 0.0 c.Cost.pinvoke_ns;
  Alcotest.(check (float 0.0)) "no pin" 0.0 c.Cost.pin_ns;
  Alcotest.(check (float 0.0)) "no gc" 0.0 c.Cost.gc_young_base_ns

let test_cost_shared_transport () =
  (* Section 8: every binding was re-hosted over the same MPICH2, so the
     wire costs must be identical across presets. *)
  List.iter
    (fun c ->
      Alcotest.(check (float 0.0))
        (c.Cost.name ^ " per-msg")
        Cost.native_cpp.Cost.sock_per_msg_ns c.Cost.sock_per_msg_ns;
      Alcotest.(check (float 0.0))
        (c.Cost.name ^ " per-byte")
        Cost.native_cpp.Cost.sock_ns_per_byte c.Cost.sock_ns_per_byte)
    Cost.all_presets

let test_cost_fastchecked_pins_dearer () =
  let free = Cost.indiana_sscli in
  let fc = Cost.indiana_sscli_fastchecked in
  Alcotest.(check bool) "fastchecked pin dearer (footnote 4)" true
    (fc.Cost.pin_ns > 2.0 *. free.Cost.pin_ns)

let test_cost_call_mechanism_ordering () =
  (* FCall must be the cheapest call mechanism: that is the core of the
     paper's performance claim. *)
  let m = Cost.motor in
  let i = Cost.indiana_sscli in
  let j = Cost.mpijava in
  Alcotest.(check bool) "fcall < pinvoke" true (m.Cost.fcall_ns < i.Cost.pinvoke_ns);
  Alcotest.(check bool) "fcall < jni" true (m.Cost.fcall_ns < j.Cost.jni_ns);
  Alcotest.(check bool) "motor crosses boundary for free" true
    (m.Cost.binding_ns_per_byte = 0.0 && i.Cost.binding_ns_per_byte > 0.0)

let test_stats_basic () =
  let s = Stats.create () in
  Alcotest.(check int) "absent is zero" 0 (Stats.get s "x");
  Stats.incr s "x";
  Stats.add s "x" 4;
  Alcotest.(check int) "accumulated" 5 (Stats.get s "x");
  Stats.reset s;
  Alcotest.(check int) "reset" 0 (Stats.get s "x")

let test_stats_negative () =
  let s = Stats.create () in
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Stats.add: negative amount") (fun () ->
      Stats.add s "x" (-1))

let test_stats_alist_sorted () =
  let s = Stats.create () in
  Stats.incr s "zebra";
  Stats.incr s "apple";
  Alcotest.(check (list string)) "sorted keys" [ "apple"; "zebra" ]
    (List.map fst (Stats.to_alist s))

let test_hist_observe () =
  let s = Stats.create () in
  Alcotest.(check bool) "absent histogram" true (Stats.hist s "lat" = None);
  for i = 1 to 100 do
    Stats.observe s "lat" (float_of_int i)
  done;
  match Stats.hist s "lat" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      Alcotest.(check int) "count" 100 h.Stats.n;
      Alcotest.(check (float 1e-6)) "sum" 5050.0 h.Stats.sum;
      Alcotest.(check (float 1e-6)) "min" 1.0 h.Stats.min;
      Alcotest.(check (float 1e-6)) "max" 100.0 h.Stats.max;
      (* Quantiles are half-octave bucket upper bounds, clamped into
         [min, max]: p50 of 1..100 lands on 64 (= 2^6), p99 clamps to
         the max. *)
      Alcotest.(check bool) "p50 is an upper bound" true
        (h.Stats.p50 >= 50.0 && h.Stats.p50 <= 72.0);
      Alcotest.(check bool) "p99 clamped to max" true
        (h.Stats.p99 >= 99.0 && h.Stats.p99 <= 100.0)

let test_hist_negative () =
  let s = Stats.create () in
  Alcotest.check_raises "negative observe rejected"
    (Invalid_argument "Stats.observe: negative value") (fun () ->
      Stats.observe s "lat" (-1.0))

let test_hist_reset () =
  let s = Stats.create () in
  Stats.observe s "lat" 5.0;
  Stats.reset s;
  Alcotest.(check bool) "reset drops histograms" true
    (Stats.hist s "lat" = None)

let test_env_with_timer () =
  let env = Env.create ~cost:Cost.motor () in
  let r =
    Env.with_timer env "work" (fun () ->
        Env.charge env 1234.0;
        42)
  in
  Alcotest.(check int) "result passed through" 42 r;
  match Stats.hist env.Env.stats "work" with
  | None -> Alcotest.fail "timer histogram missing"
  | Some h ->
      Alcotest.(check int) "one sample" 1 h.Stats.n;
      Alcotest.(check (float 1e-9)) "sum is the virtual charge" 1234.0
        h.Stats.sum

let test_env_charges () =
  let env = Env.create ~cost:Cost.motor () in
  Env.charge env 1000.0;
  Env.charge_per_byte env 2.0 500;
  Alcotest.(check (float 1e-9)) "total" 2.0 (Env.now_us env)

let test_env_with_cost_shares_clock () =
  let env = Env.create ~cost:Cost.motor () in
  let env2 = Env.with_cost Cost.native_cpp env in
  Env.charge env2 3000.0;
  Alcotest.(check (float 1e-9)) "shared clock" 3.0 (Env.now_us env)

let prop_clock_monotone =
  QCheck.Test.make ~name:"clock is monotone under non-negative charges"
    ~count:200
    QCheck.(list (float_bound_exclusive 1e6))
    (fun charges ->
      let c = Clock.create () in
      List.for_all
        (fun ns ->
          let before = Clock.now_ns c in
          Clock.advance c (Float.abs ns);
          Clock.now_ns c >= before)
        charges)

let prop_stats_sum =
  QCheck.Test.make ~name:"stats accumulate like a sum" ~count:200
    QCheck.(list small_nat)
    (fun ns ->
      let s = Stats.create () in
      List.iter (fun n -> Stats.add s "k" n) ns;
      Stats.get s "k" = List.fold_left ( + ) 0 ns)

let () =
  Alcotest.run "simtime"
    [
      ( "clock",
        [
          Alcotest.test_case "advance and reset" `Quick test_clock_advance;
          Alcotest.test_case "negative rejected" `Quick test_clock_negative;
          Alcotest.test_case "elapsed" `Quick test_clock_elapsed;
        ] );
      ( "cost",
        [
          Alcotest.test_case "presets distinct" `Quick
            test_cost_presets_distinct;
          Alcotest.test_case "native has no VM overheads" `Quick
            test_cost_native_has_no_vm_overheads;
          Alcotest.test_case "transport shared across presets" `Quick
            test_cost_shared_transport;
          Alcotest.test_case "fastchecked pinning dearer" `Quick
            test_cost_fastchecked_pins_dearer;
          Alcotest.test_case "call mechanism ordering" `Quick
            test_cost_call_mechanism_ordering;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic accumulation" `Quick test_stats_basic;
          Alcotest.test_case "negative rejected" `Quick test_stats_negative;
          Alcotest.test_case "alist sorted" `Quick test_stats_alist_sorted;
          Alcotest.test_case "histogram observe + quantiles" `Quick
            test_hist_observe;
          Alcotest.test_case "histogram rejects negatives" `Quick
            test_hist_negative;
          Alcotest.test_case "reset drops histograms" `Quick test_hist_reset;
        ] );
      ( "env",
        [
          Alcotest.test_case "charges reach the clock" `Quick
            test_env_charges;
          Alcotest.test_case "with_cost shares the clock" `Quick
            test_env_with_cost_shares_clock;
          Alcotest.test_case "with_timer observes the charge" `Quick
            test_env_with_timer;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_clock_monotone;
          QCheck_alcotest.to_alcotest prop_stats_sum;
        ] );
    ]
