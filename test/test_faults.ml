(* Fault-injection and reliable-delivery tests: deterministic fault
   schedules, correctness under loss/duplication/corruption/reordering,
   partition recovery, graceful degradation under total loss, and the
   stale-packet / rendezvous-refusal hardening of the device layer. *)

module Mpi = Mpi_core.Mpi
module Fault = Mpi_core.Fault
module Reliable = Mpi_core.Reliable
module Ch3 = Mpi_core.Ch3
module Channel = Mpi_core.Channel
module Packet = Mpi_core.Packet
module Request = Mpi_core.Request
module Status = Mpi_core.Status
module Trace = Mpi_core.Trace
module Bv = Mpi_core.Buffer_view
module W = Harness.Workloads
module Env = Simtime.Env
module Key = Simtime.Stats.Key

let payload n = Bytes.init n (fun i -> Char.chr ((i * 7 + n) land 0xff))
let stats w = (Mpi.env w).Env.stats

let counters w =
  List.map
    (fun k -> (k, Simtime.Stats.get (stats w) k))
    [
      Key.retransmits; Key.acks; Key.dup_drops; Key.ooo_drops;
      Key.corrupt_drops; Key.fault_drops; Key.fault_dups; Key.fault_delays;
      Key.fault_corrupts;
    ]

let lossy_plan ~seed ~loss =
  Fault.plan ~seed ~drop:loss ~duplicate:(loss /. 2.0)
    ~corrupt:(loss /. 4.0) ~delay:loss ~delay_ns:100_000.0 ()

(* ------------------------------------------------------------------ *)
(* The deterministic draw                                              *)
(* ------------------------------------------------------------------ *)

let test_draw_deterministic () =
  for packet = 0 to 50 do
    for salt = 0 to 5 do
      let a = Fault.draw ~seed:9 ~packet ~salt in
      let b = Fault.draw ~seed:9 ~packet ~salt in
      Alcotest.(check (float 0.0)) "same draw" a b;
      Alcotest.(check bool) "in [0,1)" true (a >= 0.0 && a < 1.0)
    done
  done;
  (* Different seeds must decorrelate: the schedules cannot be all equal. *)
  let differs = ref false in
  for packet = 0 to 20 do
    if
      Fault.draw ~seed:1 ~packet ~salt:0 <> Fault.draw ~seed:2 ~packet ~salt:0
    then differs := true
  done;
  Alcotest.(check bool) "seeds decorrelate" true !differs

let test_checksum_detects_bit_flip () =
  let env =
    {
      Packet.e_src = 0; e_dst = 1; e_tag = 3; e_context = 0; e_bytes = 32;
      e_seq = 1;
    }
  in
  let data = payload 32 in
  let p = Packet.Eager (env, data) in
  let c1 = Packet.checksum p in
  let flipped = Bytes.copy data in
  Bytes.set flipped 11 (Char.chr (Char.code (Bytes.get flipped 11) lxor 0x10));
  let c2 = Packet.checksum (Packet.Eager (env, flipped)) in
  Alcotest.(check bool) "flip changes checksum" true (c1 <> c2);
  Alcotest.(check int) "checksum stable" c1 (Packet.checksum p)

(* ------------------------------------------------------------------ *)
(* Correctness under faults: digests match the fault-free run          *)
(* ------------------------------------------------------------------ *)

let test_faulty_ring_matches_fault_free () =
  let clean, _ = W.ring ~n:3 ~rounds:10 ~size:512 () in
  let faulty, w1 =
    W.ring ~fault:(lossy_plan ~seed:42 ~loss:0.15) ~n:3 ~rounds:10 ~size:512 ()
  in
  let faulty', w2 =
    W.ring ~fault:(lossy_plan ~seed:42 ~loss:0.15) ~n:3 ~rounds:10 ~size:512 ()
  in
  Alcotest.(check string) "digest equals fault-free run" clean faulty;
  Alcotest.(check string) "same seed reproduces digest" faulty faulty';
  Alcotest.(check (list (pair string int)))
    "same seed reproduces every counter" (counters w1) (counters w2);
  Alcotest.(check bool)
    "faults were actually injected" true
    (Simtime.Stats.get (stats w1) Key.fault_drops > 0);
  Alcotest.(check bool)
    "losses were actually repaired" true
    (Simtime.Stats.get (stats w1) Key.retransmits > 0)

let test_faulty_allreduce_matches_fault_free () =
  let clean, _ = W.allreduce_chain ~n:4 ~rounds:6 () in
  let faulty, w =
    W.allreduce_chain ~fault:(lossy_plan ~seed:7 ~loss:0.1) ~n:4 ~rounds:6 ()
  in
  Alcotest.(check string) "collective digest equals fault-free" clean faulty;
  Alcotest.(check bool)
    "faults were actually injected" true
    (Simtime.Stats.get (stats w) Key.fault_drops > 0)

let prop_ring_digest_stable_across_seeds =
  let clean = lazy (fst (W.ring ~n:2 ~rounds:6 ~size:256 ())) in
  QCheck.Test.make
    ~name:"any seed/loss: faulty ring completes byte-identical" ~count:15
    QCheck.(pair (int_range 1 10_000) (int_range 0 25))
    (fun (seed, loss_pct) ->
      let loss = float_of_int loss_pct /. 100.0 in
      let faulty, _ =
        W.ring ~fault:(lossy_plan ~seed ~loss) ~n:2 ~rounds:6 ~size:256 ()
      in
      faulty = Lazy.force clean)

(* ------------------------------------------------------------------ *)
(* Partition windows                                                   *)
(* ------------------------------------------------------------------ *)

let test_partition_window_recovers () =
  let clean, _ = W.ring ~n:2 ~rounds:5 ~size:128 () in
  let cut src dst =
    {
      Fault.pt_src = src; pt_dst = dst; pt_from_ns = 0.0;
      pt_until_ns = 400_000.0;
    }
  in
  let plan = Fault.plan ~partitions:[ cut 0 1; cut 1 0 ] () in
  let faulty, w = W.ring ~fault:plan ~n:2 ~rounds:5 ~size:128 () in
  Alcotest.(check string) "digest intact after the partition heals" clean
    faulty;
  Alcotest.(check bool)
    "partition swallowed packets" true
    (Simtime.Stats.get (stats w) Key.fault_drops > 0);
  Alcotest.(check bool)
    "recovery went through retransmission" true
    (Simtime.Stats.get (stats w) Key.retransmits > 0)

(* A permanent partition (100% loss) must degrade gracefully: the send
   request stays incomplete, the layer gives up after max_retries, and
   nothing crashes. Driven manually (no fibers) so the deadlock detector
   is out of the picture and we control the clock. *)
let test_total_loss_degrades_gracefully () =
  let env = Env.create () in
  let base = Mpi_core.Sock_channel.create env ~n_ranks:2 in
  let faulty = Fault.wrap ~env (Fault.plan ~drop:1.0 ()) base in
  let chan, r = Reliable.wrap ~env faulty in
  let counter = ref 0 in
  let fresh_id () =
    incr counter;
    !counter
  in
  let d0 = Ch3.create env chan ~rank:0 ~fresh_id in
  let d1 = Ch3.create env chan ~rank:1 ~fresh_id in
  let req =
    Ch3.isend d0 ~dst:1 ~tag:0 ~context:0 ~mode:Ch3.Synchronous
      (Bv.of_bytes (payload 64))
  in
  for _ = 1 to 100 do
    Env.charge env 1_000_000.0;
    ignore (Ch3.progress d0);
    ignore (Ch3.progress d1)
  done;
  Alcotest.(check bool) "request never completes" false
    (Request.is_complete req);
  Alcotest.(check bool)
    "layer declared the peer unreachable" true
    (Simtime.Stats.get env.Env.stats Key.retx_giveups > 0);
  Alcotest.(check bool) "frames stranded in the queue" true
    (Reliable.stranded r > 0);
  (* Retransmission stopped: pumping further must not grow the counter. *)
  let retx = Simtime.Stats.get env.Env.stats Key.retransmits in
  for _ = 1 to 20 do
    Env.charge env 1_000_000.0;
    ignore (Ch3.progress d0)
  done;
  Alcotest.(check int)
    "no retransmissions after give-up" retx
    (Simtime.Stats.get env.Env.stats Key.retransmits)

(* ------------------------------------------------------------------ *)
(* Device hardening: stale packets and rendezvous refusal              *)
(* ------------------------------------------------------------------ *)

let test_spurious_control_packets_dropped () =
  let env = Env.create () in
  let chan = Mpi_core.Sock_channel.create env ~n_ranks:2 in
  let counter = ref 0 in
  let fresh_id () =
    incr counter;
    !counter
  in
  let d0 = Ch3.create env chan ~rank:0 ~fresh_id in
  (* None of these match any live state on rank 0; a pre-hardening device
     raised Mpi_error on the first one. *)
  chan.Channel.send ~src:1 ~dst:0 (Packet.Cts 999);
  chan.Channel.send ~src:1 ~dst:0 (Packet.Rndv_data (998, payload 8));
  chan.Channel.send ~src:1 ~dst:0 (Packet.Nak (997, "spurious"));
  chan.Channel.send ~src:1 ~dst:0 (Packet.Ack (1, 5));
  chan.Channel.send ~src:1 ~dst:0
    (Packet.Frame ({ Packet.f_src = 1; f_seq = 0; f_check = 0 }, Packet.Cts 1));
  Env.charge env 1_000_000.0;
  ignore (Ch3.progress d0);
  Alcotest.(check int)
    "all five counted as stale drops" 5
    (Simtime.Stats.get env.Env.stats Key.dup_drops);
  Alcotest.(check int) "no rendezvous state created" 0
    (Ch3.pending_rendezvous d0)

let test_truncation_nak_releases_rendezvous_state () =
  let sender_err = ref None in
  let recver_err = ref None in
  let w =
    Mpi.run ~n:2 (fun p ->
        let comm = Mpi.comm_world (Mpi.world_of p) in
        if Mpi.rank p = 0 then begin
          try Mpi.ssend p ~comm ~dst:1 ~tag:0 (Bv.of_bytes (payload 4096))
          with Ch3.Mpi_error msg -> sender_err := Some msg
        end
        else begin
          try
            ignore
              (Mpi.recv p ~comm ~src:0 ~tag:0
                 (Bv.of_bytes (Bytes.create 16)))
          with Ch3.Mpi_error msg -> recver_err := Some msg
        end)
  in
  (match !recver_err with
  | Some msg ->
      Alcotest.(check bool) "receiver saw truncation" true
        (String.length msg > 0)
  | None -> Alcotest.fail "receiver should have seen a truncation error");
  (match !sender_err with
  | Some msg ->
      Alcotest.(check bool)
        "sender saw the refusal" true
        (String.length msg > 0)
  | None -> Alcotest.fail "sender should have seen the rendezvous refusal");
  Alcotest.(check (list (pair int string)))
    "no leaked rendezvous or request state" [] (Mpi.quiescence_report w)

let test_request_completion_idempotent () =
  let req = Request.create ~id:1 Request.Send_req in
  let st = { Status.source = 0; tag = 1; bytes = 8 } in
  Request.complete req (Some st);
  Request.complete req None;
  Request.fail req "too late";
  Alcotest.(check bool) "complete" true (Request.is_complete req);
  Alcotest.(check bool) "status survives later calls" true
    (Request.status req = Some st);
  Alcotest.(check bool) "no error recorded" true (Request.error req = None);
  let req2 = Request.create ~id:2 Request.Recv_req in
  Request.fail req2 "boom";
  Request.complete req2 (Some st);
  Alcotest.(check bool) "error survives later complete" true
    (Request.error req2 = Some "boom");
  Alcotest.(check bool) "failed request has no status" true
    (Request.status req2 = None)

(* ------------------------------------------------------------------ *)
(* Observability: trace events and registry hygiene                    *)
(* ------------------------------------------------------------------ *)

let test_trace_records_retx_and_ack () =
  let env = Env.create () in
  let tr = Trace.enable env in
  ignore
    (Mpi.run ~env
       ~fault:(Fault.plan ~seed:5 ~drop:0.3 ())
       ~n:2
       (fun p ->
         let comm = Mpi.comm_world (Mpi.world_of p) in
         if Mpi.rank p = 0 then
           for tag = 0 to 9 do
             Mpi.send p ~comm ~dst:1 ~tag (Bv.of_bytes (payload 64))
           done
         else
           for tag = 0 to 9 do
             ignore
               (Mpi.recv p ~comm ~src:0 ~tag
                  (Bv.of_bytes (Bytes.create 64)))
           done));
  let ops = List.map (fun e -> e.Trace.op) (Trace.events tr) in
  Alcotest.(check bool) "acks traced" true (List.mem "ack" ops);
  Alcotest.(check bool) "retransmissions traced" true (List.mem "retx" ops);
  Alcotest.(check bool) "drops traced" true (List.mem "drop" ops);
  Trace.disable env

let test_trace_disable_releases_registry () =
  let before = Trace.registered () in
  let env = Env.create () in
  ignore (Trace.enable env);
  Alcotest.(check int) "enable registers" (before + 1) (Trace.registered ());
  ignore (Trace.enable env);
  Alcotest.(check int) "double enable is idempotent" (before + 1)
    (Trace.registered ());
  Trace.disable env;
  Alcotest.(check int) "disable releases" before (Trace.registered ());
  Alcotest.(check bool) "trace detached" true (Trace.find env = None);
  Trace.disable env;
  Alcotest.(check int) "double disable is a no-op" before (Trace.registered ())

(* ------------------------------------------------------------------ *)
(* The loss-sweep experiment end to end (small)                        *)
(* ------------------------------------------------------------------ *)

let test_loss_sweep_digests_agree () =
  let points =
    Harness.Experiments.loss_sweep ~n:2 ~rounds:4 ~size:64
      ~losses:[ 0.0; 0.2 ] ()
  in
  match points with
  | [ clean; lossy ] ->
      Alcotest.(check string)
        "lossy digest equals clean" clean.Harness.Experiments.digest
        lossy.Harness.Experiments.digest;
      Alcotest.(check bool)
        "loss costs virtual time" true
        (lossy.Harness.Experiments.time_us
        > clean.Harness.Experiments.time_us);
      Alcotest.(check bool)
        "retransmissions recorded" true
        (lossy.Harness.Experiments.retransmits > 0)
  | _ -> Alcotest.fail "expected two sweep points"

let () =
  Alcotest.run "faults"
    [
      ( "determinism",
        [
          Alcotest.test_case "draw is seeded and uniform" `Quick
            test_draw_deterministic;
          Alcotest.test_case "checksum detects bit flips" `Quick
            test_checksum_detects_bit_flip;
          Alcotest.test_case "faulty ring matches fault-free" `Quick
            test_faulty_ring_matches_fault_free;
          Alcotest.test_case "faulty allreduce matches fault-free" `Quick
            test_faulty_allreduce_matches_fault_free;
          QCheck_alcotest.to_alcotest prop_ring_digest_stable_across_seeds;
        ] );
      ( "partitions",
        [
          Alcotest.test_case "partition window recovers" `Quick
            test_partition_window_recovers;
          Alcotest.test_case "total loss degrades gracefully" `Quick
            test_total_loss_degrades_gracefully;
        ] );
      ( "device hardening",
        [
          Alcotest.test_case "spurious control packets dropped" `Quick
            test_spurious_control_packets_dropped;
          Alcotest.test_case "truncation NAK releases rendezvous state"
            `Quick test_truncation_nak_releases_rendezvous_state;
          Alcotest.test_case "request completion idempotent" `Quick
            test_request_completion_idempotent;
        ] );
      ( "observability",
        [
          Alcotest.test_case "trace records retx/ack/drop" `Quick
            test_trace_records_retx_and_ack;
          Alcotest.test_case "trace disable releases registry" `Quick
            test_trace_disable_releases_registry;
          Alcotest.test_case "loss sweep digests agree" `Quick
            test_loss_sweep_digests_agree;
        ] );
    ]
