(* Unit tests for the cooperative fiber scheduler. *)

let test_run_to_completion () =
  let log = ref [] in
  Fiber.run
    [
      ("a", fun () -> log := "a" :: !log);
      ("b", fun () -> log := "b" :: !log);
    ];
  Alcotest.(check (list string)) "both ran" [ "a"; "b" ] (List.rev !log)

let test_yield_interleaves () =
  let log = ref [] in
  let fiber name =
    ( name,
      fun () ->
        log := (name ^ "1") :: !log;
        Fiber.yield ();
        log := (name ^ "2") :: !log )
  in
  Fiber.run [ fiber "a"; fiber "b" ];
  Alcotest.(check (list string))
    "round robin" [ "a1"; "b1"; "a2"; "b2" ] (List.rev !log)

let test_wait_until_wakes () =
  let flag = ref false in
  let woke = ref false in
  Fiber.run
    [
      ( "waiter",
        fun () ->
          Fiber.wait_until ~label:"flag" (fun () -> !flag);
          woke := true );
      ("setter", fun () -> flag := true);
    ];
  Alcotest.(check bool) "waiter woke" true !woke

let test_deadlock_detected () =
  let saw = ref [] in
  let pol = ref "" in
  (try
     Fiber.run
       [
         ("stuck", fun () -> Fiber.wait_until ~label:"never" (fun () -> false));
       ]
   with Fiber.Deadlock { policy; waiting; _ } ->
     saw := waiting;
     pol := policy);
  Alcotest.(check (list string)) "labels reported" [ "stuck/never" ] !saw;
  Alcotest.(check string) "policy reported" "round-robin" !pol

let test_activity_defers_deadlock () =
  (* A predicate that needs several scans but reports activity must not be
     declared deadlocked. *)
  let countdown = ref 5 in
  let done_ = ref false in
  Fiber.run
    [
      ( "poller",
        fun () ->
          Fiber.wait_until ~label:"countdown" (fun () ->
              if !countdown = 0 then true
              else begin
                decr countdown;
                Fiber.note_activity ();
                false
              end);
          done_ := true );
    ];
  Alcotest.(check bool) "finished" true !done_

let test_spawn_dynamic () =
  let log = ref [] in
  Fiber.run
    [
      ( "parent",
        fun () ->
          Fiber.spawn "child" (fun () -> log := "child" :: !log);
          log := "parent" :: !log );
    ];
  Alcotest.(check (list string))
    "child ran after parent" [ "parent"; "child" ] (List.rev !log)

let test_exception_propagates () =
  Alcotest.check_raises "exception escapes run" (Failure "boom") (fun () ->
      Fiber.run [ ("bomb", fun () -> failwith "boom") ])

let test_nested_run () =
  let inner_done = ref false in
  Fiber.run
    [
      ( "outer",
        fun () ->
          Fiber.run [ ("inner", fun () -> inner_done := true) ] );
    ];
  Alcotest.(check bool) "nested scheduler ran" true !inner_done

let test_ping_pong_handshake () =
  (* Two fibers alternating through shared state: the core pattern of the
     MPI ping-pong workload. *)
  let ball = ref 0 in
  let hits = ref 0 in
  let player me =
    fun () ->
      for _ = 1 to 10 do
        Fiber.wait_until ~label:"turn" (fun () -> !ball = me);
        incr hits;
        ball := 1 - me
      done
  in
  Fiber.run [ ("p0", player 0); ("p1", player 1) ];
  Alcotest.(check int) "20 hits" 20 !hits

let test_in_scheduler () =
  Alcotest.(check bool) "outside" false (Fiber.in_scheduler ());
  let inside = ref false in
  Fiber.run [ ("probe", fun () -> inside := Fiber.in_scheduler ()) ];
  Alcotest.(check bool) "inside" true !inside


let test_wait_predicate_exception_propagates () =
  Alcotest.check_raises "predicate exception escapes run"
    (Failure "pred-boom") (fun () ->
      Fiber.run
        [
          ( "waiter",
            fun () ->
              Fiber.yield ();
              Fiber.wait_until ~label:"bad" (fun () -> failwith "pred-boom")
          );
        ])

let test_spawned_fiber_exception_propagates () =
  Alcotest.check_raises "spawned fiber exception escapes run"
    (Failure "child-boom") (fun () ->
      Fiber.run
        [ ("parent", fun () -> Fiber.spawn "child" (fun () -> failwith "child-boom")) ])

(* ---- scheduling policies ---- *)

(* A workload whose event order depends on every scheduling decision. *)
let order_log policy =
  let log = ref [] in
  let fiber name =
    ( name,
      fun () ->
        for i = 1 to 3 do
          log := Printf.sprintf "%s%d" name i :: !log;
          Fiber.yield ()
        done )
  in
  Fiber.run ~policy [ fiber "a"; fiber "b"; fiber "c" ];
  List.rev !log

let test_seeded_random_deterministic () =
  let one = order_log (Fiber.Seeded_random 7) in
  let two = order_log (Fiber.Seeded_random 7) in
  Alcotest.(check (list string)) "same seed, same schedule" one two;
  let other = List.exists (fun s -> order_log (Fiber.Seeded_random s) <> one)
      [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check bool) "some other seed differs" true other

let test_record_replay_reproduces () =
  let tr = Fiber.new_trace () in
  let log = ref [] in
  let run policy record =
    log := [];
    let fiber name =
      ( name,
        fun () ->
          for i = 1 to 3 do
            log := Printf.sprintf "%s%d" name i :: !log;
            Fiber.yield ()
          done )
    in
    Fiber.run ~policy ?record [ fiber "a"; fiber "b"; fiber "c" ];
    List.rev !log
  in
  let seeded = run (Fiber.Seeded_random 42) (Some tr) in
  Alcotest.(check bool) "decisions recorded" true (Fiber.trace_length tr > 0);
  let replayed = run (Fiber.Replay tr) None in
  Alcotest.(check (list string)) "replay reproduces the schedule" seeded
    replayed

let test_replay_clamps_bad_indices () =
  (* Mutated (shrunk) traces may hold indices wider than the live run
     queue; replay must clamp them, not crash. *)
  let tr = Fiber.trace_of_list [ 99; 99; 99 ] in
  let count = ref 0 in
  Fiber.run ~policy:(Fiber.Replay tr)
    [ ("a", fun () -> incr count); ("b", fun () -> incr count) ];
  Alcotest.(check int) "all fibers ran" 2 !count

let test_with_policy_scopes_nested_runs () =
  (* The ambient policy reaches a nested run and one trace covers both
     schedulers; replaying it reproduces the whole nested execution. *)
  let tr = Fiber.new_trace () in
  let run_nested record policy =
    let log = ref [] in
    let body () =
      Fiber.run
        [
          ( "outer",
            fun () ->
              log := "o1" :: !log;
              Fiber.run
                [
                  ("i1", fun () -> log := "i1" :: !log);
                  ("i2", fun () -> log := "i2" :: !log);
                ];
              log := "o2" :: !log );
          ("peer", fun () -> log := "p" :: !log);
        ]
    in
    (match record with
    | Some t -> Fiber.with_policy ~record:t policy body
    | None -> Fiber.with_policy policy body);
    List.rev !log
  in
  let seeded = run_nested (Some tr) (Fiber.Seeded_random 11) in
  let replayed = run_nested None (Fiber.Replay tr) in
  Alcotest.(check (list string)) "nested replay matches" seeded replayed

let test_deadlock_reports_seed () =
  (* Diagnostics must identify the schedule that found the deadlock. *)
  try
    Fiber.run ~policy:(Fiber.Seeded_random 1234)
      [
        ("stuck", fun () -> Fiber.wait_until ~label:"never" (fun () -> false));
        ("also", fun () -> Fiber.yield ());
      ];
    Alcotest.fail "expected deadlock"
  with Fiber.Deadlock { policy; waiting; _ } ->
    Alcotest.(check string) "policy names the seed" "seeded-random(seed=1234)"
      policy;
    Alcotest.(check (list string)) "waiting labels" [ "stuck/never" ] waiting

let test_two_step_progress_under_random () =
  (* A predicate that needs several scans but reports activity (the
     channels' one-packet-per-poll pattern) must not be declared
     deadlocked under any seed. *)
  List.iter
    (fun seed ->
      let countdown = ref 2 in
      let done_ = ref false in
      Fiber.run ~policy:(Fiber.Seeded_random seed)
        [
          ( "poller",
            fun () ->
              Fiber.wait_until ~label:"two-step" (fun () ->
                  if !countdown = 0 then true
                  else begin
                    decr countdown;
                    Fiber.note_activity ();
                    false
                  end);
              done_ := true );
          ( "noise",
            fun () ->
              for _ = 1 to 3 do
                Fiber.yield ()
              done );
        ];
      Alcotest.(check bool)
        (Printf.sprintf "seed %d finished" seed)
        true !done_)
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let prop_many_fibers_all_run =
  QCheck.Test.make ~name:"n fibers all complete" ~count:50
    QCheck.(int_range 1 64)
    (fun n ->
      let count = ref 0 in
      let fibers =
        List.init n (fun i ->
            ( Printf.sprintf "f%d" i,
              fun () ->
                Fiber.yield ();
                incr count ))
      in
      Fiber.run fibers;
      !count = n)

let () =
  Alcotest.run "fiber"
    [
      ( "scheduler",
        [
          Alcotest.test_case "run to completion" `Quick
            test_run_to_completion;
          Alcotest.test_case "yield interleaves" `Quick
            test_yield_interleaves;
          Alcotest.test_case "wait_until wakes" `Quick test_wait_until_wakes;
          Alcotest.test_case "deadlock detected" `Quick
            test_deadlock_detected;
          Alcotest.test_case "activity defers deadlock" `Quick
            test_activity_defers_deadlock;
          Alcotest.test_case "dynamic spawn" `Quick test_spawn_dynamic;
          Alcotest.test_case "exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "nested run" `Quick test_nested_run;
          Alcotest.test_case "ping-pong handshake" `Quick
            test_ping_pong_handshake;
          Alcotest.test_case "in_scheduler" `Quick test_in_scheduler;
          Alcotest.test_case "wait predicate exception" `Quick
            test_wait_predicate_exception_propagates;
          Alcotest.test_case "spawned fiber exception" `Quick
            test_spawned_fiber_exception_propagates;
        ] );
      ( "policies",
        [
          Alcotest.test_case "seeded random deterministic" `Quick
            test_seeded_random_deterministic;
          Alcotest.test_case "record + replay reproduces" `Quick
            test_record_replay_reproduces;
          Alcotest.test_case "replay clamps bad indices" `Quick
            test_replay_clamps_bad_indices;
          Alcotest.test_case "with_policy scopes nested runs" `Quick
            test_with_policy_scopes_nested_runs;
          Alcotest.test_case "deadlock reports seed" `Quick
            test_deadlock_reports_seed;
          Alcotest.test_case "two-step progress under random" `Quick
            test_two_step_progress_under_random;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_many_fibers_all_run ]);
    ]
