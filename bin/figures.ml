(* Regenerate every figure and table of the paper's evaluation, plus the
   ablations listed in DESIGN.md. See EXPERIMENTS.md for paper-vs-measured
   commentary. *)

open Harness

let result_cell = function
  | Workloads.Time_us t -> Table.Num t
  | Workloads.Crashed msg -> Table.Text ("CRASH: " ^ msg)

let series_table ~title ~xlabel series ~csv =
  (* simpler layout: first column is x *)
  let headers =
    xlabel
    :: List.map (fun (s : Experiments.series) -> s.Experiments.system) series
  in
  ignore headers;
  let headers =
    List.map (fun (s : Experiments.series) -> s.Experiments.system) series
  in
  let xs =
    List.map
      (fun (p : Experiments.point) -> p.Experiments.x)
      (List.hd series).Experiments.points
  in
  let rows =
    List.map
      (fun x ->
        ( string_of_int x,
          List.map
            (fun (s : Experiments.series) ->
              match
                List.find_opt
                  (fun (p : Experiments.point) -> p.Experiments.x = x)
                  s.Experiments.points
              with
              | Some p -> result_cell p.Experiments.result
              | None -> Table.Missing)
            series ))
      xs
  in
  Table.print_table ~title ~headers ~rows ();
  let chart_series =
    List.map
      (fun (s : Experiments.series) ->
        ( s.Experiments.system,
          List.filter_map
            (fun (p : Experiments.point) ->
              match p.Experiments.result with
              | Workloads.Time_us t -> Some (float_of_int p.Experiments.x, t)
              | Workloads.Crashed _ -> None)
            s.Experiments.points ))
      series
  in
  Chart.log_log ~title:(title ^ " [plot]") ~xlabel ~ylabel:"us/iter"
    ~series:chart_series ();
  match csv with
  | Some path ->
      Table.write_csv ~path ~headers ~rows;
      Format.printf "csv written to %s@." path
  | None -> ()

let quick_protocol = { Workloads.iters = 40; timed = 20; trials = 1 }

let run_fig9 ~quick ~csv =
  let protocol =
    if quick then quick_protocol else Workloads.paper_protocol
  in
  let series = Experiments.fig9 ~protocol () in
  series_table
    ~title:
      "Figure 9: ping-pong, regular MPI operations (us per iteration vs \
       buffer bytes)"
    ~xlabel:"bytes" series ~csv;
  Format.printf "@.shape checks:@.%a" Shapes.pp_verdicts
    (Shapes.fig9_checks series);
  series

let run_fig10 ~quick ~csv =
  let series = Experiments.fig10 ~quick () in
  series_table
    ~title:
      "Figure 10: ping-pong, linked-list object transport (us per \
       iteration vs total objects; 4096 B payload)"
    ~xlabel:"objects" series ~csv;
  if not quick then
    Format.printf "@.shape checks:@.%a" Shapes.pp_verdicts
      (Shapes.fig10_checks series);
  series

let run_taba ~quick =
  let protocol =
    if quick then quick_protocol else Workloads.paper_protocol
  in
  let series = Experiments.fig9 ~protocol () in
  let rows =
    List.map
      (fun (r : Experiments.taba_row) ->
        ( r.Experiments.metric,
          [ Table.Num r.Experiments.paper_pct;
            Table.Num r.Experiments.measured_pct ] ))
      (Experiments.taba series)
  in
  Table.print_table
    ~title:"Table A: Motor improvement over Indiana SSCLI (percent)"
    ~headers:[ "paper"; "measured" ] ~rows ()

let run_tabb () =
  let rows =
    List.map
      (fun (name, us) -> (name, [ Table.Num us ]))
      (Experiments.tabb ())
  in
  Table.print_table
    ~title:
      "Table B (footnote 4): pinning cost by SSCLI build, 64 B ping-pong"
    ~headers:[ "us/iter" ] ~rows ()

let run_ablations ~quick =
  let rows =
    List.map
      (fun (name, us, pins) ->
        (name, [ Table.Num us; Table.Num (float_of_int pins) ]))
      (Experiments.abl_pinning_policy ~size:1024 ())
  in
  Table.print_table ~title:"Ablation 1: pinning policy (1 KiB ping-pong)"
    ~headers:[ "us/iter"; "pins" ] ~rows ();
  let rows =
    List.map
      (fun (name, us) -> (name, [ Table.Num us ]))
      (Experiments.abl_call_mechanism ~size:4 ())
  in
  Table.print_table
    ~title:"Ablation 2: call mechanism priced into the same stack (4 B)"
    ~headers:[ "us/iter" ] ~rows ();
  series_table ~title:"Ablation 3: visited structure (Figure 10 workload)"
    ~xlabel:"objects"
    (Experiments.abl_visited ~quick ())
    ~csv:None;
  let eager = Experiments.abl_eager_threshold () in
  let sizes = List.map fst (snd (List.hd eager)) in
  let rows =
    List.map
      (fun (threshold, points) ->
        ( string_of_int threshold,
          List.map (fun (_, us) -> Table.Num us) points ))
      eager
  in
  Table.print_table
    ~title:"Ablation 4: eager/rendezvous threshold (us/iter by message size)"
    ~headers:(List.map string_of_int sizes)
    ~rows ();
  let rows =
    List.map
      (fun (name, us, pins, dropped) ->
        ( name,
          [ Table.Num us; Table.Num (float_of_int pins);
            Table.Num (float_of_int dropped) ] ))
      (Experiments.abl_nonblocking_unpin ())
  in
  Table.print_table
    ~title:"Ablation 5: non-blocking unpin strategy under GC pressure"
    ~headers:[ "us total"; "pins"; "cond. pins dropped" ]
    ~rows ();
  let chans = Experiments.abl_channel () in
  let sizes = List.map fst (snd (List.hd chans)) in
  let rows =
    List.map
      (fun (name, points) ->
        (name, List.map (fun (_, us) -> Table.Num us) points))
      chans
  in
  Table.print_table
    ~title:
      "Ablation 6: channel swap, same Motor stack (us/iter by message size)"
    ~headers:(List.map string_of_int sizes)
    ~rows ();
  let rows =
    List.map
      (fun (n, motor_us, wrapper_us) ->
        ( string_of_int n,
          [ Table.Num motor_us; Table.Num wrapper_us;
            Table.Num (wrapper_us /. motor_us) ] ))
      (Experiments.abl_split_scatter ())
  in
  Table.print_table
    ~title:
      "Ablation 7: OScatter of a 64-object array — split representation vs \
       wrapper emulation (Section 2.4)"
    ~headers:[ "Motor us"; "wrapper us"; "ratio" ]
    ~rows ()

(* Loss sweep: completion time and goodput of the ring workload under
   injected faults, with the reliable-delivery layer masking them. *)
let faults_headers =
  [ "us"; "MB/s"; "retx"; "acks"; "fault drops"; "corrupt"; "dup"; "digest" ]

let run_faults ~quick ~csv =
  let rounds = if quick then 10 else 30 in
  let points =
    if quick then
      Harness.Experiments.loss_sweep ~rounds ~losses:[ 0.0; 0.05; 0.1 ] ()
    else Harness.Experiments.loss_sweep ()
  in
  let baseline =
    match points with
    | p :: _ -> p.Experiments.digest
    | [] -> ""
  in
  let rows =
    List.map
      (fun (p : Experiments.loss_point) ->
        ( Printf.sprintf "%.2f" p.Experiments.loss,
          [
            Table.Num p.Experiments.time_us;
            Table.Num p.Experiments.goodput_mb_s;
            Table.Num (float_of_int p.Experiments.retransmits);
            Table.Num (float_of_int p.Experiments.acks);
            Table.Num (float_of_int p.Experiments.fault_drops);
            Table.Num (float_of_int p.Experiments.fault_corrupts);
            Table.Num (float_of_int p.Experiments.dup_drops);
            Table.Text
              (if p.Experiments.digest = baseline then "ok" else "MISMATCH");
          ] ))
      points
  in
  Table.print_table
    ~title:
      (Printf.sprintf
         "Loss sweep: 4-rank ring, %d rounds x 2 KiB, reliable delivery \
          over a faulty wire (by drop probability)"
         rounds)
    ~headers:faults_headers ~rows ();
  if List.for_all
       (fun (p : Experiments.loss_point) -> p.Experiments.digest = baseline)
       points
  then Format.printf "digest check: all runs byte-identical to loss 0@."
  else Format.printf "DIGEST MISMATCH: faults leaked through the transport@.";
  match csv with
  | Some path ->
      Table.write_csv ~path ~headers:faults_headers ~rows;
      Format.printf "csv written to %s@." path
  | None -> ()

(* Collective algorithm sweep: latency vs ranks x payload per algorithm,
   every algorithm forced explicitly (not just the `Auto pick). *)
let coll_headers = [ "algo"; "ranks"; "bytes"; "time us"; "msgs" ]

let run_coll ~quick ~csv =
  let points =
    if quick then
      Harness.Experiments.coll_sweep ~ranks:[ 2; 4; 8 ]
        ~sizes:[ 64; 4096 ] ()
    else Harness.Experiments.coll_sweep ()
  in
  let rows =
    List.map
      (fun (p : Experiments.coll_point) ->
        ( p.Experiments.c_coll,
          [
            Table.Text p.Experiments.c_algo;
            Table.Num (float_of_int p.Experiments.c_ranks);
            Table.Num (float_of_int p.Experiments.c_bytes);
            Table.Num p.Experiments.c_time_us;
            Table.Num (float_of_int p.Experiments.c_msgs);
          ] ))
      points
  in
  Table.print_table
    ~title:"Collective algorithm sweep (virtual us per operation)"
    ~headers:coll_headers ~rows ();
  (* The selection-policy claim: whichever allreduce algorithm the
     threshold picks must also be the measured winner, on both sides of
     the crossover. *)
  let find coll algo n b =
    List.find_opt
      (fun (p : Experiments.coll_point) ->
        p.Experiments.c_coll = coll
        && p.Experiments.c_algo = algo
        && p.Experiments.c_ranks = n
        && p.Experiments.c_bytes = b)
      points
  in
  let verdict n big =
    match
      (find "allreduce" "rd" n big, find "allreduce" "rabenseifner" n big)
    with
    | Some rd, Some rab ->
        let picked =
          match
            Mpi_core.Collectives.allreduce_algo_for Simtime.Cost.native_cpp
              ~n ~bytes:big ~granule:8 ~commutative:true
          with
          | `Rabenseifner -> "rabenseifner"
          | `Rd -> "rd"
          | `Linear -> "linear"
        in
        let winner =
          if rab.Experiments.c_time_us < rd.Experiments.c_time_us then
            "rabenseifner"
          else "rd"
        in
        Format.printf
          "allreduce at %d ranks x %d B: rd %.0f us, rabenseifner %.0f us; \
           policy picks %s -> %s@."
          n big rd.Experiments.c_time_us rab.Experiments.c_time_us picked
          (if picked = winner then "agrees with measurement"
           else "MISMATCH: policy picked the slower algorithm")
    | _ -> ()
  in
  if quick then verdict 8 4096
  else begin
    verdict 16 16_384;
    verdict 16 262_144
  end;
  match csv with
  | Some path ->
      Table.write_csv ~path ~headers:coll_headers ~rows;
      Format.printf "csv written to %s@." path
  | None -> ()

(* Overlap sweep: how much of an in-flight iallreduce a compute loop can
   hide, versus the blocking baseline. *)
let overlap_headers =
  [ "bytes"; "compute us"; "comm us"; "blocking us"; "overlap us"; "eff" ]

let run_overlap ~quick ~csv =
  let points =
    if quick then
      Harness.Experiments.overlap_sweep ~ranks:[ 2; 4 ] ~sizes:[ 16_384 ] ()
    else Harness.Experiments.overlap_sweep ()
  in
  let rows =
    List.map
      (fun (p : Experiments.overlap_point) ->
        ( string_of_int p.Experiments.v_ranks,
          [
            Table.Num (float_of_int p.Experiments.v_bytes);
            Table.Num p.Experiments.v_compute_us;
            Table.Num p.Experiments.v_comm_us;
            Table.Num p.Experiments.v_block_us;
            Table.Num p.Experiments.v_overlap_us;
            Table.Num p.Experiments.v_efficiency;
          ] ))
      points
  in
  Table.print_table
    ~title:
      "Overlap sweep: iallreduce + chunked compute vs blocking allreduce + \
       compute (by ranks)"
    ~headers:overlap_headers ~rows ();
  let ok =
    List.for_all
      (fun (p : Experiments.overlap_point) -> p.Experiments.v_efficiency > 0.0)
      points
  in
  if ok then
    Format.printf
      "overlap check: every point beats the blocking baseline@."
  else
    Format.printf
      "OVERLAP CHECK FAILED: some point is no better than blocking@.";
  (match csv with
  | Some path ->
      Table.write_csv ~path ~headers:overlap_headers ~rows;
      Format.printf "csv written to %s@." path
  | None -> ());
  if not ok then Stdlib.exit 1

(* Scale sweep: the two-level allreduce at 1k-64k simulated ranks, each
   row checked against the analytic message and round model. *)
let scale_headers =
  [
    "algo"; "ranks"; "nodes"; "cores"; "bytes"; "time us"; "msgs intra";
    "msgs inter"; "rounds"; "model msgs"; "model rounds"; "ok";
  ]

let run_scale ~quick ~out =
  let points = Harness.Experiments.scale_sweep ~quick () in
  let rows =
    List.map
      (fun (p : Experiments.scale_point) ->
        ( p.Experiments.sc_algo,
          [
            Table.Num (float_of_int p.Experiments.sc_ranks);
            Table.Num (float_of_int p.Experiments.sc_nodes);
            Table.Num (float_of_int p.Experiments.sc_cores);
            Table.Num (float_of_int p.Experiments.sc_bytes);
            Table.Num p.Experiments.sc_time_us;
            Table.Num (float_of_int p.Experiments.sc_msgs_intra);
            Table.Num (float_of_int p.Experiments.sc_msgs_inter);
            Table.Num (float_of_int p.Experiments.sc_rounds);
            Table.Num (float_of_int p.Experiments.sc_model_msgs);
            Table.Num (float_of_int p.Experiments.sc_model_rounds);
            Table.Text (if Experiments.scale_ok p then "yes" else "NO");
          ] ))
      points
  in
  Table.print_table
    ~title:
      "Scale sweep: two-level allreduce vs the analytic model (8 B, 64 \
       ranks/node)"
    ~headers:scale_headers ~rows ();
  let bad = List.filter (fun p -> not (Experiments.scale_ok p)) points in
  if bad = [] then
    Format.printf
      "scale check: every row matches the analytic round/message model@."
  else
    List.iter
      (fun (p : Experiments.scale_point) ->
        Format.printf
          "SCALE CHECK FAILED: %s at %d ranks measured %d msgs / %d rounds, \
           model says %d / %d@."
          p.Experiments.sc_algo p.Experiments.sc_ranks
          (p.Experiments.sc_msgs_intra + p.Experiments.sc_msgs_inter)
          p.Experiments.sc_rounds p.Experiments.sc_model_msgs
          p.Experiments.sc_model_rounds)
      bad;
  Table.write_csv ~path:out ~headers:scale_headers ~rows;
  Format.printf "csv written to %s@." out;
  if bad <> [] then Stdlib.exit 1

(* One-sided RMA sweep: put size x registration-cache capacity, each row
   checked against the transfer-path accounting. *)
let rma_headers =
  [
    "bytes"; "cache bytes"; "puts"; "time us"; "reg hits"; "reg misses";
    "evictions"; "eager"; "write rndv"; "read rndv"; "ok";
  ]

let run_rma ~quick ~out =
  let points =
    if quick then
      Harness.Experiments.rma_sweep ~sizes:[ 1_024; 65_536 ]
        ~caches:[ 65_536; 1_048_576 ] ()
    else Harness.Experiments.rma_sweep ()
  in
  let rows =
    List.map
      (fun (p : Experiments.rma_point) ->
        ( string_of_int p.Experiments.m_bytes,
          [
            Table.Num (float_of_int p.Experiments.m_cache_bytes);
            Table.Num (float_of_int p.Experiments.m_puts);
            Table.Num p.Experiments.m_time_us;
            Table.Num (float_of_int p.Experiments.m_hits);
            Table.Num (float_of_int p.Experiments.m_misses);
            Table.Num (float_of_int p.Experiments.m_evictions);
            Table.Num (float_of_int p.Experiments.m_eager);
            Table.Num (float_of_int p.Experiments.m_write_rndv);
            Table.Num (float_of_int p.Experiments.m_read_rndv);
            Table.Text (if Experiments.rma_ok p then "yes" else "NO");
          ] ))
      points
  in
  Table.print_table
    ~title:
      "RMA sweep: fence-epoch puts, size x registration-cache capacity \
       (2 ranks, rdma channel)"
    ~headers:rma_headers ~rows ();
  let bad = List.filter (fun p -> not (Experiments.rma_ok p)) points in
  let hits =
    List.fold_left (fun a (p : Experiments.rma_point) -> a + p.Experiments.m_hits) 0 points
  in
  if bad = [] && hits > 0 then
    Format.printf
      "rma check: every row satisfies the transfer-path accounting, cache \
       hits observed@."
  else begin
    List.iter
      (fun (p : Experiments.rma_point) ->
        Format.printf
          "RMA CHECK FAILED: %d B / %d B cache: %d puts = %d eager + %d \
           write + %d read; %d hits + %d misses, %d evictions@."
          p.Experiments.m_bytes p.Experiments.m_cache_bytes
          p.Experiments.m_puts p.Experiments.m_eager
          p.Experiments.m_write_rndv p.Experiments.m_read_rndv
          p.Experiments.m_hits p.Experiments.m_misses
          p.Experiments.m_evictions)
      bad;
    if hits = 0 then
      Format.printf "RMA CHECK FAILED: no registration-cache hits anywhere@."
  end;
  Table.write_csv ~path:out ~headers:rma_headers ~rows;
  Format.printf "csv written to %s@." out;
  if bad <> [] || hits = 0 then Stdlib.exit 1

let ensure_dir path =
  if path <> "" && path <> "." && not (Sys.file_exists path) then
    Sys.mkdir path 0o755

let write_file path contents =
  ensure_dir (Filename.dirname path);
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* Kill sweep: the rank-death workloads (lib/check) under many fault
   seeds — each seed picks a victim and a kill time, each run goes
   through the ULFM recovery loop (attempt, agree, revoke, shrink,
   retry) and is judged by the survivor-convergence invariant. The CSV
   is the committed results/kill_sweep.csv artifact. *)
let run_killsweep ~quick ~seeds ~out =
  let module E = Check.Explore in
  let n_seeds =
    match seeds with Some s -> s | None -> if quick then 20 else 200
  in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "workload,seed,victim,kill_at_ns,status,violations\n";
  let runs = ref 0 and failures = ref 0 in
  let per_workload = ref [] in
  List.iter
    (fun w ->
      let wfail = ref 0 in
      for seed = 1 to n_seeds do
        let o = E.run_one ~fault_seed:seed w (Check.Policy.Seeded_random seed) in
        incr runs;
        if E.failed o then begin
          incr failures;
          incr wfail
        end;
        let victims =
          if E.name w = "kill_hier_leader" then Some E.hier_leader_victims
          else None
        in
        let k = E.kill_of_fault ?victims ~seed:(Some seed) ~n:4 () in
        let violations =
          String.map
            (fun c -> if c = ',' || c = '\n' then ';' else c)
            (String.concat "; "
               (List.map
                  (fun v -> Format.asprintf "%a" Check.Invariant.pp v)
                  o.E.o_violations))
        in
        Buffer.add_string buf
          (Printf.sprintf "%s,%d,%d,%.0f,%s,%s\n" (E.name w) seed
             k.Mpi_core.Fault.k_rank k.Mpi_core.Fault.k_at_ns
             (if E.failed o then "fail" else "pass")
             violations)
      done;
      per_workload := (E.name w, !wfail) :: !per_workload)
    (E.kill_workloads ());
  List.iter
    (fun (name, wfail) ->
      Format.printf "%s: %d seed(s), %d failure(s)@." name n_seeds wfail)
    (List.rev !per_workload);
  write_file out (Buffer.contents buf);
  Format.printf
    "kill sweep: %d run(s), %d failure(s); csv written to %s@." !runs
    !failures out;
  if !failures > 0 then Stdlib.exit 1

(* Profile run: one representative workload per instrumented subsystem —
   eager + rendezvous sends, a scheduled collective, serializer passes,
   young and full GC — under tracing, then dump the virtual-time
   histogram snapshot and the Chrome trace. *)
let run_profile ~quick ~out ~trace_out =
  let env = Simtime.Env.create ~cost:Simtime.Cost.motor () in
  let trace = Mpi_core.Trace.enable ~capacity:16384 env in
  let iters = if quick then 4 else 32 in
  let big = 262_144 in
  ignore
    (Mpi_core.Mpi.run ~env ~n:4 (fun p ->
         let module C = Mpi_core.Collectives in
         let comm = Mpi_core.Mpi.comm_world (Mpi_core.Mpi.world_of p) in
         for _ = 1 to iters do
           ignore (C.allreduce p comm ~op:C.sum_i64 (Bytes.create 4096))
         done;
         (* One large transfer to push the transport into rendezvous. *)
         let bv () = Mpi_core.Buffer_view.of_bytes (Bytes.create big) in
         match Mpi_core.Mpi.rank p with
         | 0 -> Mpi_core.Mpi.send p ~comm ~dst:1 ~tag:99 (bv ())
         | 1 -> ignore (Mpi_core.Mpi.recv p ~comm ~src:0 ~tag:99 (bv ()))
         | _ -> ()));
  let rt = Vm.Runtime.create ~env () in
  let elems = if quick then 64 else 256 in
  let head =
    Workloads.make_linked_list rt.Vm.Runtime.gc rt.Vm.Runtime.registry ~elems
      ~total_data_bytes:4096
  in
  let wire =
    Motor.Serializer.serialize rt.Vm.Runtime.gc ~visited:Hashed head
  in
  ignore (Motor.Serializer.deserialize rt.Vm.Runtime.gc wire);
  Vm.Gc.collect rt.Vm.Runtime.gc ~full:false;
  Vm.Gc.collect rt.Vm.Runtime.gc ~full:true;
  Mpi_core.Trace.disable env;
  let snap = Simtime.Stats.snapshot env.Simtime.Env.stats in
  write_file out (Simtime.Stats.to_json snap);
  Format.printf "profile snapshot written to %s@." out;
  write_file trace_out (Mpi_core.Trace.to_chrome_json trace);
  Format.printf "chrome trace written to %s (open at ui.perfetto.dev)@."
    trace_out;
  let hist_rows =
    List.map
      (fun (key, (s : Simtime.Stats.summary)) ->
        ( key,
          [
            Table.Num (float_of_int s.Simtime.Stats.n);
            Table.Num s.Simtime.Stats.sum;
            Table.Num s.Simtime.Stats.p50;
            Table.Num s.Simtime.Stats.p99;
          ] ))
      (Simtime.Stats.snapshot_hists snap)
  in
  Table.print_table ~title:"Virtual-time histograms (ns)"
    ~headers:[ "n"; "sum"; "p50"; "p99" ] ~rows:hist_rows ();
  (* Self-check: every headline subsystem must have produced samples. *)
  let module Key = Simtime.Stats.Key in
  let missing =
    List.filter
      (fun k ->
        match Simtime.Stats.hist_summary snap k with
        | Some s -> s.Simtime.Stats.n = 0
        | None -> true)
      [
        Key.h_ch3_send; Key.h_ch3_eager; Key.h_ch3_rndv; Key.h_sched_step;
        Key.h_gc_young_pause; Key.h_gc_full_pause; Key.h_ser_encode;
        Key.h_ser_decode;
      ]
  in
  if missing <> [] then begin
    Format.printf "PROFILE CHECK FAILED: no samples for %s@."
      (String.concat ", " missing);
    Stdlib.exit 1
  end
  else Format.printf "profile check: all headline histograms populated@."

(* Regenerate a self-contained markdown report of every measured result:
   the machine-written companion to EXPERIMENTS.md. *)
let run_report ~quick ~path =
  let protocol =
    if quick then quick_protocol else Workloads.paper_protocol
  in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let md_series ~xlabel series =
    let headers =
      List.map (fun (s : Experiments.series) -> s.Experiments.system) series
    in
    out "| %s | %s |\n" xlabel (String.concat " | " headers);
    out "|%s|\n"
      (String.concat "|" (List.init (List.length headers + 1) (fun _ -> "---")));
    let xs =
      List.map
        (fun (p : Experiments.point) -> p.Experiments.x)
        (List.hd series).Experiments.points
    in
    List.iter
      (fun x ->
        let cells =
          List.map
            (fun (s : Experiments.series) ->
              match
                List.find_opt
                  (fun (p : Experiments.point) -> p.Experiments.x = x)
                  s.Experiments.points
              with
              | Some { result = Workloads.Time_us t; _ } ->
                  Printf.sprintf "%.1f" t
              | Some { result = Workloads.Crashed _; _ } -> "CRASH"
              | None -> "-")
            series
        in
        out "| %d | %s |\n" x (String.concat " | " cells))
      xs
  in
  let md_verdicts vs =
    List.iter
      (fun (v : Shapes.verdict) ->
        out "- %s **%s** — %s\n"
          (if v.Shapes.pass then "PASS" else "FAIL")
          v.Shapes.check v.Shapes.detail)
      vs
  in
  out "# Measured results (auto-generated by `figures report`)\n\n";
  out "Protocol: %s.\n\n" (if quick then "quick" else "paper (200/100/3)");
  out "## Figure 9 — regular MPI ping-pong (us/iteration)\n\n";
  let f9 = Experiments.fig9 ~protocol () in
  md_series ~xlabel:"bytes" f9;
  out "\n";
  md_verdicts (Shapes.fig9_checks f9);
  out "\n## Figure 10 — linked-list object transport (us/iteration)\n\n";
  let f10 = Experiments.fig10 () in
  md_series ~xlabel:"objects" f10;
  out "\n";
  md_verdicts (Shapes.fig10_checks f10);
  out "\n## Table A — Motor vs Indiana SSCLI (percent)\n\n";
  out "| metric | paper | measured |\n|---|---|---|\n";
  List.iter
    (fun (r : Experiments.taba_row) ->
      out "| %s | %.1f | %.1f |\n" r.Experiments.metric
        r.Experiments.paper_pct r.Experiments.measured_pct)
    (Experiments.taba f9);
  out "\n## Table B — pinning by SSCLI build (64 B ping-pong)\n\n";
  out "| build | us/iter |\n|---|---|\n";
  List.iter (fun (name, us) -> out "| %s | %.1f |\n" name us)
    (Experiments.tabb ());
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "report written to %s@." path

let run_speedup ~quick ~out =
  let points = Harness.Speedup.sweep ~quick () in
  let cores = Harness.Speedup.cores () in
  let headers =
    [ "workload"; "domains"; "ranks"; "reps"; "cores"; "median_wall_ms";
      "speedup" ]
  in
  let rows =
    List.map
      (fun (p : Harness.Speedup.point) ->
        ( p.Harness.Speedup.p_workload,
          [
            Table.Num (float_of_int p.Harness.Speedup.p_domains);
            Table.Num (float_of_int p.Harness.Speedup.p_ranks);
            Table.Num (float_of_int p.Harness.Speedup.p_reps);
            Table.Num (float_of_int cores);
            Table.Num p.Harness.Speedup.p_median_wall_ms;
            Table.Num p.Harness.Speedup.p_speedup;
          ] ))
      points
  in
  Table.print_table
    ~title:
      (Printf.sprintf
         "Wall-clock speedup: rank fibers on 1/2/4 domains (%d core(s) \
          available)"
         cores)
    ~headers ~rows ();
  if cores < 4 then
    Format.printf
      "note: only %d core(s) available — the ratios measure scheduling \
       overhead, not scaling; the CI gate skips enforcement below 4 cores@."
      cores;
  Harness.Speedup.write_csv ~path:out points;
  Format.printf "csv written to %s@." out

let run_check ~quick =
  let protocol =
    if quick then quick_protocol else Workloads.paper_protocol
  in
  let f9 = Experiments.fig9 ~protocol () in
  let f10 = Experiments.fig10 () in
  let verdicts = Shapes.fig9_checks f9 @ Shapes.fig10_checks f10 in
  Format.printf "%a" Shapes.pp_verdicts verdicts;
  if Shapes.all_pass verdicts then begin
    Format.printf "all shape checks pass@.";
    0
  end
  else begin
    Format.printf "SHAPE CHECKS FAILED@.";
    1
  end

open Cmdliner

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Reduced iteration counts.")

let csv =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the table as CSV.")

let cmd_of name doc f = Cmd.v (Cmd.info name ~doc) f

let fig9_cmd =
  cmd_of "fig9" "Regenerate Figure 9."
    Term.(const (fun quick csv -> ignore (run_fig9 ~quick ~csv)) $ quick $ csv)

let fig10_cmd =
  cmd_of "fig10" "Regenerate Figure 10."
    Term.(const (fun quick csv -> ignore (run_fig10 ~quick ~csv)) $ quick $ csv)

let taba_cmd =
  cmd_of "taba" "Motor-vs-Indiana percentages (in-text claims)."
    Term.(const (fun quick -> run_taba ~quick) $ quick)

let tabb_cmd =
  cmd_of "tabb" "Footnote 4: pinning by SSCLI build type."
    Term.(const run_tabb $ const ())

let ablations_cmd =
  cmd_of "ablations" "Run the five design ablations."
    Term.(const (fun quick -> run_ablations ~quick) $ quick)

let faults_cmd =
  cmd_of "faults" "Loss sweep: the ring workload under injected faults."
    Term.(const (fun quick csv -> run_faults ~quick ~csv) $ quick $ csv)

let profile_cmd =
  let out =
    Arg.(
      value
      & opt string "results/profile_snapshot.json"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Where to write the histogram snapshot.")
  in
  let trace_out =
    Arg.(
      value
      & opt string "results/profile_trace.json"
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Where to write the Chrome trace (Perfetto-loadable).")
  in
  cmd_of "profile"
    "Run an instrumented workload and dump histograms + Chrome trace."
    Term.(
      const (fun quick out trace_out -> run_profile ~quick ~out ~trace_out)
      $ quick $ out $ trace_out)

let killsweep_cmd =
  let seeds =
    Arg.(
      value
      & opt (some int) None
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Fault seeds per workload (default 200; 20 with --quick).")
  in
  let out =
    Arg.(
      value
      & opt string "results/kill_sweep.csv"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Where to write the CSV.")
  in
  cmd_of "killsweep"
    "Rank-death sweep: the ULFM recovery loop under seeded kills, judged \
     by survivor convergence."
    Term.(
      const (fun quick seeds out -> run_killsweep ~quick ~seeds ~out)
      $ quick $ seeds $ out)

let coll_cmd =
  cmd_of "coll" "Collective algorithm sweep: latency vs ranks x payload."
    Term.(const (fun quick csv -> run_coll ~quick ~csv) $ quick $ csv)

let scale_cmd =
  let out =
    Arg.(
      value
      & opt string "results/scale_sweep.csv"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Where to write the CSV.")
  in
  cmd_of "scale"
    "Scale sweep: the two-level allreduce at 1k-64k simulated ranks, \
     checked against the analytic round/message model; exit 1 on mismatch."
    Term.(const (fun quick out -> run_scale ~quick ~out) $ quick $ out)

let rma_cmd =
  let out =
    Arg.(
      value
      & opt string "results/rma_sweep.csv"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Where to write the CSV.")
  in
  cmd_of "rma"
    "One-sided RMA sweep: put size x registration-cache capacity on the \
     rdma channel, each row checked against the transfer-path accounting; \
     exit 1 on mismatch."
    Term.(const (fun quick out -> run_rma ~quick ~out) $ quick $ out)

let speedup_cmd =
  let out =
    Arg.(
      value
      & opt string "results/speedup_sweep.csv"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Where to write the CSV.")
  in
  cmd_of "speedup"
    "Wall-clock speedup sweep: the ring and allreduce workloads on 1/2/4 \
     real domains (the only real-clock experiment; everything else is \
     virtual time)."
    Term.(const (fun quick out -> run_speedup ~quick ~out) $ quick $ out)

let overlap_cmd =
  cmd_of "overlap"
    "Overlap sweep: nonblocking collectives vs the blocking baseline."
    Term.(const (fun quick csv -> run_overlap ~quick ~csv) $ quick $ csv)

let check_cmd =
  Cmd.v (Cmd.info "check" ~doc:"Run all shape checks; exit 1 on failure.")
    Term.(const (fun quick -> Stdlib.exit (run_check ~quick)) $ quick)

let report_cmd =
  let path =
    Arg.(
      value
      & opt string "RESULTS.md"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Where to write the report.")
  in
  cmd_of "report" "Write a markdown report of every measured result."
    Term.(const (fun quick path -> run_report ~quick ~path) $ quick $ path)

let all_cmd =
  cmd_of "all" "Everything: figures, tables, ablations."
    Term.(
      const (fun quick csv ->
          ignore (run_fig9 ~quick ~csv);
          ignore (run_fig10 ~quick ~csv:None);
          run_taba ~quick;
          run_tabb ();
          run_ablations ~quick;
          run_faults ~quick ~csv:None)
      $ quick $ csv)

let () =
  let info =
    Cmd.info "figures"
      ~doc:"Regenerate the tables and figures of the Motor paper."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            fig9_cmd; fig10_cmd; taba_cmd; tabb_cmd; ablations_cmd;
            faults_cmd; killsweep_cmd; coll_cmd; overlap_cmd; scale_cmd;
            rma_cmd; speedup_cmd;
            profile_cmd; all_cmd; check_cmd; report_cmd;
          ]))
