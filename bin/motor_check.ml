(* Schedule-exploration driver: run the lib/check workloads under many
   seeded schedules, check invariants, shrink failures, replay corpus
   traces. CI runs `explore --quick` as a smoke test and `replay` over
   test/corpus; the full sweep produces the results/schedule_sweep.csv
   artifact. *)

open Cmdliner
module E = Check.Explore

let violations_line vs =
  String.concat "; "
    (List.map (fun v -> Format.asprintf "%a" Check.Invariant.pp v) vs)

let resolve_workloads = function
  | [] -> Ok (E.default_workloads ())
  | names ->
      let missing = List.filter (fun n -> E.find n = None) names in
      if missing <> [] then
        Error ("unknown workload(s): " ^ String.concat ", " missing)
      else Ok (List.filter_map E.find names)

(* Output paths (--csv, --save-failing) get their parent directories
   created, and an unwritable path is a clean usage error (exit 2)
   instead of a Sys_error mid-sweep. *)
let rec mkdirs dir =
  if
    dir <> "" && dir <> "." && dir <> "/" && dir <> Filename.current_dir_name
    && not (Sys.file_exists dir)
  then begin
    mkdirs (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let open_out_checked path =
  mkdirs (Filename.dirname path);
  try Ok (open_out path) with Sys_error msg -> Error msg

let csv_header = "workload,policy,seed,fault_seed,status,digest,trace_len"

let csv_row (o : E.outcome) =
  Printf.sprintf "%s,%s,%s,%s,%s,%s,%d" o.o_workload
    (match o.o_policy with
    | Check.Policy.Round_robin -> "round-robin"
    | Check.Policy.Seeded_random _ -> "seeded-random"
    | Check.Policy.Replay _ -> "replay")
    (match Check.Policy.seed_of o.o_policy with
    | Some s -> string_of_int s
    | None -> "")
    (match o.o_fault_seed with Some s -> string_of_int s | None -> "")
    (if E.failed o then "fail" else "pass")
    o.o_digest
    (List.length o.o_trace)

(* Schedule exploration and replay are only meaningful under the
   deterministic cooperative scheduler: a recorded decision stream has no
   interpretation when ranks race on real domains. Fail fast with a
   usage error (exit 2) instead of producing a hang or garbage. *)
let reject_parallel what parallel =
  match parallel with
  | None -> false
  | Some d ->
      Printf.eprintf
        "error: %s cannot run with --parallel %d: recorded schedules and \
         invariant checks require the deterministic cooperative scheduler \
         (single domain). Drop --parallel, or use `motor_bench speedup` for \
         multi-domain runs.\n"
        what d;
      true

let explore parallel seeds faults quick workload_names csv save_failing =
  if reject_parallel "explore" parallel then 2
  else
  match resolve_workloads workload_names with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      2
  | Ok workloads -> (
      match
        match csv with
        | None -> Ok None
        | Some path -> Result.map Option.some (open_out_checked path)
      with
      | Error msg ->
          Printf.eprintf "error: cannot write CSV: %s\n" msg;
          2
      | Ok csv_oc ->
      let io_errors = ref false in
      Option.iter (fun oc -> output_string oc (csv_header ^ "\n")) csv_oc;
      let progress o =
        Option.iter (fun oc -> output_string oc (csv_row o ^ "\n")) csv_oc;
        if E.failed o then
          Printf.printf "FAIL %s under %s%s: %s\n%!" o.E.o_workload
            (Check.Policy.name o.E.o_policy)
            (match o.E.o_fault_seed with
            | Some s -> Printf.sprintf " x fault(seed=%d)" s
            | None -> "")
            (violations_line o.E.o_violations)
      in
      let report = E.explore ~quick ~faults ~progress ~workloads ~seeds () in
      Option.iter close_out csv_oc;
      List.iter
        (fun (wname, entry) ->
          Printf.printf "shrunk %s failure to %d decision(s)\n" wname
            (List.length entry.Check.Corpus.c_decisions);
          match save_failing with
          | Some dir -> (
              let path = Filename.concat dir (wname ^ ".trace") in
              try
                mkdirs dir;
                Check.Corpus.save ~path entry;
                Printf.printf "  saved %s\n" path
              with Sys_error msg ->
                io_errors := true;
                Printf.eprintf "error: cannot save %s: %s\n" path msg)
          | None -> ())
        report.E.r_shrunk;
      let failures = List.length report.E.r_failures in
      Printf.printf "%d run(s), %d workload(s), %d failure(s)\n"
        report.E.r_runs (List.length workloads) failures;
      if failures > 0 then 1 else if !io_errors then 2 else 0)

let replay parallel quick files =
  if reject_parallel "replay" parallel then 2
  else begin
  let bad = ref 0 in
  List.iter
    (fun path ->
      match Check.Corpus.load ~path with
      | exception (Failure msg | Sys_error msg) ->
          incr bad;
          Printf.printf "ERROR %s: %s\n" path msg
      | entry -> (
          match E.replay_entry ~quick entry with
          | Ok o ->
              Printf.printf "ok %s (%s, %d decision(s)%s)\n" path
                o.E.o_workload
                (List.length entry.Check.Corpus.c_decisions)
                (if E.failed o then ", failed as expected" else ", clean")
          | Error msg ->
              incr bad;
              Printf.printf "MISMATCH %s: %s\n" path msg))
    files;
  if !bad = 0 then 0 else 1
  end

let list_workloads () =
  List.iter
    (fun w ->
      Printf.printf "%-18s %s\n" (E.name w)
        (if E.faultable w then "(faultable)" else ""))
    (E.all_workloads ());
  0

(* ---------------------------------------------------------------- *)

let parallel_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "parallel" ] ~docv:"DOMAINS"
        ~doc:
          "Rejected: exploration and replay are deterministic-only. This \
           flag exists so the mistake fails with a clear diagnostic (exit \
           2) rather than a hang.")

let seeds_arg =
  Arg.(
    value & opt int 100
    & info [ "seeds" ] ~docv:"N" ~doc:"Number of random schedule seeds.")

let faults_arg =
  Arg.(
    value & flag
    & info [ "faults" ]
        ~doc:
          "Cross each schedule seed with a derived fault-plan seed on \
           faultable workloads (the reliable layer must mask the faults).")

let quick_arg =
  Arg.(
    value & flag
    & info [ "quick" ] ~doc:"Smaller rank/round counts (CI smoke mode).")

let workloads_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "workload" ] ~docv:"NAME"
        ~doc:"Restrict to a workload (repeatable; default: the standard set).")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Write one CSV row per run.")

let save_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-failing" ] ~docv:"DIR"
        ~doc:
          "Save shrunk failing traces as corpus files in $(docv) (created, \
           with parents, if missing).")

let files_arg =
  Arg.(
    non_empty & pos_all file []
    & info [] ~docv:"TRACE" ~doc:"Corpus trace files.")

let explore_cmd =
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Run workloads under many seeded schedules and check invariants.")
    Term.(
      const explore $ parallel_arg $ seeds_arg $ faults_arg $ quick_arg
      $ workloads_arg $ csv_arg $ save_arg)

let replay_cmd =
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Replay corpus traces and check them against their expectations.")
    Term.(const replay $ parallel_arg $ quick_arg $ files_arg)

let list_cmd =
  Cmd.v
    (Cmd.info "list" ~doc:"List the registered workloads.")
    Term.(const list_workloads $ const ())

let () =
  let info =
    Cmd.info "motor_check"
      ~doc:"Schedule exploration for the Motor MPI/VM stack."
  in
  exit (Cmd.eval' (Cmd.group info [ explore_cmd; replay_cmd; list_cmd ]))
