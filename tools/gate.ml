(* The CI perf gate's engine, split out of the check_bench executable so
   its parser and threshold logic are unit-testable (test/test_tools.ml).

   Two kinds of metric live in BENCH_results.json:

   - virtual-time benches (Bechamel ns/run of the simulator itself):
     low-noise, gated at 25% against the committed baseline;
   - wall-clock benches (the "speedup" group: median-of-N elapsed time
     of real multi-domain runs): machine-dependent and noisier, gated
     at 50%, and additionally gated on the 1-domain / max-domain
     speedup ratio — which is machine-independent — when the recording
     machine had enough cores for the ratio to mean anything. *)

(* --- A minimal recursive-descent JSON parser (numbers, strings, objects,
   arrays, literals). Stdlib-only: the container has no JSON library, and
   the input is our own emitter's output, so strict ASCII is fine. --- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); loop ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); loop ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); loop ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); loop ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); loop ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); loop ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); loop ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); loop ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let code =
                match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
                | Some c -> c
                | None -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              (* Our emitters only escape control characters; anything in
                 the BMP is re-encoded as UTF-8. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              loop ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* --- Bench documents --- *)

type doc = {
  d_groups : (string * (string * float) list) list;
  d_cores : int option;
      (** [Domain.recommended_domain_count] on the machine that produced
          the run; absent in pre-§15 baselines. *)
}

let doc_of_string s =
  let json = parse s in
  let groups =
    match member "groups" json with
    | Some (Obj groups) ->
        List.filter_map
          (fun (group, v) ->
            match v with
            | Obj tests ->
                Some
                  ( group,
                    List.filter_map
                      (fun (test, v) ->
                        match v with Num f -> Some (test, f) | _ -> None)
                      tests )
            | _ -> None)
          groups
    | _ -> raise (Parse_error "no \"groups\" object")
  in
  let cores =
    match member "cores" json with
    | Some (Num f) -> Some (int_of_float f)
    | _ -> None
  in
  { d_groups = groups; d_cores = cores }

(* --- Gate policy --- *)

let virtual_groups =
  [ "fig9"; "fig10"; "collectives"; "resilience"; "hier"; "rma" ]
let wall_groups = [ "speedup" ]
let virtual_threshold = 1.25
let wall_threshold = 1.50

let threshold_for group =
  if List.mem group wall_groups then wall_threshold else virtual_threshold

type verdict =
  | Pass of float  (** ratio current/baseline *)
  | Regression of float
  | Missing  (** in the baseline, absent from the current run *)
  | New  (** in the current run, absent from the baseline *)

type row = {
  r_group : string;
  r_test : string;
  r_base : float option;
  r_cur : float option;
  r_verdict : verdict;
}

let failed row =
  match row.r_verdict with
  | Regression _ | Missing -> true
  | Pass _ | New -> false

(* Compare one gated group; baseline order first, then the new tests. *)
let compare_group group ~current ~baseline =
  let threshold = threshold_for group in
  let cur_tests = Option.value (List.assoc_opt group current) ~default:[] in
  match List.assoc_opt group baseline with
  | None -> []
  | Some base_tests ->
      let known =
        List.map
          (fun (test, base_ns) ->
            match List.assoc_opt test cur_tests with
            | None ->
                {
                  r_group = group;
                  r_test = test;
                  r_base = Some base_ns;
                  r_cur = None;
                  r_verdict = Missing;
                }
            | Some cur_ns ->
                let ratio = cur_ns /. base_ns in
                {
                  r_group = group;
                  r_test = test;
                  r_base = Some base_ns;
                  r_cur = Some cur_ns;
                  r_verdict =
                    (if cur_ns <= base_ns *. threshold then Pass ratio
                     else Regression ratio);
                })
          base_tests
      in
      let fresh =
        List.filter_map
          (fun (test, cur_ns) ->
            if List.mem_assoc test base_tests then None
            else
              Some
                {
                  r_group = group;
                  r_test = test;
                  r_base = None;
                  r_cur = Some cur_ns;
                  r_verdict = New;
                })
          cur_tests
      in
      known @ fresh

let compare_docs ?(wall_clock_only = false) ~current ~baseline () =
  let gated =
    if wall_clock_only then wall_groups else virtual_groups @ wall_groups
  in
  List.concat_map
    (fun group ->
      compare_group group ~current:current.d_groups ~baseline:baseline.d_groups)
    gated

(* --- Speedup ratios ---

   The "speedup" group's test names are "<workload>@<d>dom". The ratio
   1-domain / d-domain wall time is machine-independent (unlike the
   absolute numbers), so it is the thing the multicore CI job pins:
   speedup at the highest measured domain count must reach [min]. The
   check only applies when the machine that produced the current run
   had at least [min_cores] cores — on a 1-core container every domain
   count collapses onto the same CPU and the ratio is meaningless. *)

type speedup = {
  s_workload : string;
  s_domains : int;
  s_base_ns : float;  (** 1-domain wall time *)
  s_ns : float;  (** wall time at [s_domains] *)
  s_ratio : float;
}

let split_speedup_name name =
  match String.rindex_opt name '@' with
  | None -> None
  | Some i ->
      let workload = String.sub name 0 i in
      let rest = String.sub name (i + 1) (String.length name - i - 1) in
      if String.length rest > 3 && String.sub rest (String.length rest - 3) 3 = "dom"
      then
        Option.map
          (fun d -> (workload, d))
          (int_of_string_opt (String.sub rest 0 (String.length rest - 3)))
      else None

let speedups doc =
  let entries =
    List.concat_map
      (fun g -> Option.value (List.assoc_opt g doc.d_groups) ~default:[])
      wall_groups
    |> List.filter_map (fun (name, ns) ->
           Option.map (fun (w, d) -> (w, d, ns)) (split_speedup_name name))
  in
  let workloads =
    List.sort_uniq compare (List.map (fun (w, _, _) -> w) entries)
  in
  List.filter_map
    (fun w ->
      let mine = List.filter (fun (w', _, _) -> w' = w) entries in
      match List.find_opt (fun (_, d, _) -> d = 1) mine with
      | None -> None
      | Some (_, _, base_ns) -> (
          match
            List.fold_left
              (fun acc (_, d, ns) ->
                match acc with
                | Some (d', _) when d' >= d -> acc
                | _ when d > 1 -> Some (d, ns)
                | _ -> acc)
              None mine
          with
          | None -> None
          | Some (d, ns) ->
              Some
                {
                  s_workload = w;
                  s_domains = d;
                  s_base_ns = base_ns;
                  s_ns = ns;
                  s_ratio = base_ns /. ns;
                }))
    workloads

let min_cores = 4

type speedup_outcome =
  | Enforced of speedup list * speedup list
      (** (passing, failing) against the requested minimum *)
  | Skipped_low_cores of int
      (** the machine had this many cores — below {!min_cores}, the
          ratio carries no information *)
  | No_data  (** no "<workload>@<d>dom" entries in the current run *)

let check_speedup ~min doc =
  match speedups doc with
  | [] -> No_data
  | sps -> (
      match doc.d_cores with
      | Some c when c < min_cores -> Skipped_low_cores c
      | Some _ | None ->
          let passing, failing =
            List.partition (fun s -> s.s_ratio >= min) sps
          in
          Enforced (passing, failing))
