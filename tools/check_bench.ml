(* CI perf gate: compare a fresh BENCH_results.json against the checked-in
   baseline and fail on regressions.

   Usage:
     check_bench CURRENT BASELINE [--update-baseline] [--wall-clock-only]
                 [--min-speedup R]

   Gate policy lives in tools/gate.ml (shared with the tests): the
   virtual-time groups are gated at 25%, the wall-clock "speedup" group
   at 50%, and --min-speedup additionally pins the 1-domain/max-domain
   wall-clock ratio — skipped automatically when the current run's
   machine has fewer than 4 cores, where the ratio is meaningless.

   --wall-clock-only restricts the comparison to the wall-clock groups:
   the multicore CI job runs only the speedup benches, so the
   virtual-time groups are legitimately absent from its current file.

   --update-baseline prints the usual comparison, then overwrites
   BASELINE with CURRENT and exits 0 — the reseed path when a PR adds
   bench groups (no hand-editing of the JSON).

   Exit codes: 0 gate passed (or baseline reseeded), 1 regression or
   missing bench or speedup below the minimum, 2 usage / IO / parse
   error. *)

let usage () =
  Printf.eprintf
    "usage: check_bench CURRENT BASELINE [--update-baseline] \
     [--wall-clock-only] [--min-speedup R]\n";
  exit 2

let read_file path =
  let ic =
    try open_in_bin path
    with Sys_error msg ->
      Printf.eprintf "check_bench: cannot open %s: %s\n" path msg;
      exit 2
  in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  contents

let doc_of path =
  try Gate.doc_of_string (read_file path)
  with Gate.Parse_error msg ->
    Printf.eprintf "check_bench: %s: %s\n" path msg;
    exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let update = List.mem "--update-baseline" args in
  let wall_clock_only = List.mem "--wall-clock-only" args in
  let rec parse_min acc = function
    | "--min-speedup" :: r :: rest -> (
        match float_of_string_opt r with
        | Some f when f > 0.0 -> parse_min (Some f) rest
        | _ -> usage ())
    | "--min-speedup" :: [] -> usage ()
    | _ :: rest -> parse_min acc rest
    | [] -> acc
  in
  let min_speedup = parse_min None args in
  let positional =
    let rec strip = function
      | [] -> []
      | "--min-speedup" :: _ :: rest -> strip rest
      | a :: rest when String.length a >= 2 && String.sub a 0 2 = "--" ->
          strip rest
      | a :: rest -> a :: strip rest
    in
    strip args
  in
  let current_path, baseline_path =
    match positional with [ c; b ] -> (c, b) | _ -> usage ()
  in
  let current = doc_of current_path in
  let baseline = doc_of baseline_path in
  let rows = Gate.compare_docs ~wall_clock_only ~current ~baseline () in
  let failures = List.length (List.filter Gate.failed rows) in
  let checked =
    List.length
      (List.filter (fun r -> r.Gate.r_verdict <> Gate.New) rows)
  in
  Printf.printf "%-45s %12s %12s %8s  %s\n" "benchmark" "baseline ns"
    "current ns" "ratio" "verdict";
  Printf.printf "%s\n" (String.make 90 '-');
  List.iter
    (fun r ->
      let name = r.Gate.r_group ^ "/" ^ r.Gate.r_test in
      let fnum = function Some f -> Printf.sprintf "%.0f" f | None -> "-" in
      match r.Gate.r_verdict with
      | Gate.Pass ratio ->
          Printf.printf "%-45s %12s %12s %8.2f  ok\n" name (fnum r.Gate.r_base)
            (fnum r.Gate.r_cur) ratio
      | Gate.Regression ratio ->
          Printf.printf "%-45s %12s %12s %8.2f  REGRESSION (>%.0f%%)\n" name
            (fnum r.Gate.r_base) (fnum r.Gate.r_cur) ratio
            ((Gate.threshold_for r.Gate.r_group -. 1.0) *. 100.0)
      | Gate.Missing ->
          Printf.printf "%-45s %12s %12s %8s  MISSING\n" name
            (fnum r.Gate.r_base) "-" "-"
      | Gate.New ->
          Printf.printf "%-45s %12s %12s %8s  new (reseed baseline)\n" name "-"
            (fnum r.Gate.r_cur) "-")
    rows;
  Printf.printf "%s\n" (String.make 90 '-');
  let speedup_failed =
    match min_speedup with
    | None -> false
    | Some min -> (
        match Gate.check_speedup ~min current with
        | Gate.No_data ->
            Printf.printf
              "speedup gate: no <workload>@<N>dom entries in %s — FAIL\n"
              current_path;
            true
        | Gate.Skipped_low_cores c ->
            Printf.printf
              "speedup gate: skipped (machine has %d core(s), need >= %d for \
               the ratio to be meaningful)\n"
              c Gate.min_cores;
            false
        | Gate.Enforced (passing, failing) ->
            List.iter
              (fun s ->
                Printf.printf
                  "speedup %-24s %.2fx at %d domains (>= %.2fx required)  ok\n"
                  s.Gate.s_workload s.Gate.s_ratio s.Gate.s_domains min)
              passing;
            List.iter
              (fun s ->
                Printf.printf
                  "speedup %-24s %.2fx at %d domains (>= %.2fx required)  \
                   FAIL\n"
                  s.Gate.s_workload s.Gate.s_ratio s.Gate.s_domains min)
              failing;
            failing <> [])
  in
  if update then begin
    (* Reseed: the comparison above is informational; the current run
       becomes the new baseline verbatim. *)
    let oc =
      try open_out_bin baseline_path
      with Sys_error msg ->
        Printf.eprintf "check_bench: cannot write %s: %s\n" baseline_path msg;
        exit 2
    in
    output_string oc (read_file current_path);
    close_out oc;
    Printf.printf "baseline %s reseeded from %s\n" baseline_path current_path
  end
  else if failures > 0 || speedup_failed then begin
    if failures > 0 then
      Printf.printf "perf gate: %d of %d gated benchmarks regressed\n" failures
        checked;
    if speedup_failed then
      Printf.printf "perf gate: wall-clock speedup below the minimum\n";
    exit 1
  end
  else Printf.printf "perf gate: all %d gated benchmarks passed\n" checked
