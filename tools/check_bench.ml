(* CI perf gate: compare a fresh BENCH_results.json against the checked-in
   baseline and fail on wall-clock regressions.

   Usage: check_bench CURRENT BASELINE [--update-baseline]

   --update-baseline prints the usual comparison, then overwrites
   BASELINE with CURRENT and exits 0 — the reseed path when a PR adds
   bench groups (no hand-editing of the JSON).

   Both files are the output of `bench/main.exe --json` — a fixed shape
   {"schema":1,"unit":"ns/run","groups":{"<group>":{"<test>":ns}}}. Only
   the groups listed in [gated] are compared (the virtual-time figures and
   the collectives hot path); the rest of the bench exists for local
   profiling and is too noisy to gate on. A test regresses when its
   current estimate exceeds baseline * threshold; a test missing from the
   current run also fails (a silently dropped benchmark would otherwise
   retire its own gate). New tests absent from the baseline pass with a
   note — the baseline is reseeded whenever a PR adds benches. *)

let gated = [ "fig9"; "fig10"; "collectives"; "resilience"; "hier" ]
let threshold = 1.25

(* --- A minimal recursive-descent JSON parser (numbers, strings, objects,
   arrays, literals). Stdlib-only: the container has no JSON library, and
   the input is our own emitter's output, so strict ASCII is fine. --- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); loop ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); loop ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); loop ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); loop ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); loop ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); loop ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); loop ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); loop ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* Our emitters only escape control characters; anything in
                 the BMP is re-encoded as UTF-8. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              loop ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* --- Gate logic --- *)

let read_file path =
  let ic =
    try open_in_bin path
    with Sys_error msg ->
      Printf.eprintf "check_bench: cannot open %s: %s\n" path msg;
      exit 2
  in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  contents

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let groups_of path =
  let json =
    try parse (read_file path)
    with Parse_error msg ->
      Printf.eprintf "check_bench: %s: %s\n" path msg;
      exit 2
  in
  match member "groups" json with
  | Some (Obj groups) ->
      List.filter_map
        (fun (group, v) ->
          match v with
          | Obj tests ->
              Some
                ( group,
                  List.filter_map
                    (fun (test, v) ->
                      match v with Num f -> Some (test, f) | _ -> None)
                    tests )
          | _ -> None)
        groups
  | _ ->
      Printf.eprintf "check_bench: %s: no \"groups\" object\n" path;
      exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let update = List.mem "--update-baseline" args in
  let current_path, baseline_path =
    match List.filter (fun a -> a <> "--update-baseline") args with
    | [ c; b ] -> (c, b)
    | _ ->
        Printf.eprintf "usage: check_bench CURRENT BASELINE [--update-baseline]\n";
        exit 2
  in
  let current = groups_of current_path in
  let baseline = groups_of baseline_path in
  let failures = ref 0 in
  let checked = ref 0 in
  Printf.printf "%-45s %12s %12s %8s  %s\n" "benchmark" "baseline ns"
    "current ns" "ratio" "verdict";
  Printf.printf "%s\n" (String.make 90 '-');
  List.iter
    (fun group ->
      match List.assoc_opt group baseline with
      | None -> Printf.printf "group %s: not in baseline, skipped\n" group
      | Some base_tests ->
          let cur_tests =
            Option.value (List.assoc_opt group current) ~default:[]
          in
          List.iter
            (fun (test, base_ns) ->
              let name = group ^ "/" ^ test in
              incr checked;
              match List.assoc_opt test cur_tests with
              | None ->
                  incr failures;
                  Printf.printf "%-45s %12.0f %12s %8s  MISSING\n" name
                    base_ns "-" "-"
              | Some cur_ns ->
                  let ratio = cur_ns /. base_ns in
                  let ok = cur_ns <= base_ns *. threshold in
                  if not ok then incr failures;
                  Printf.printf "%-45s %12.0f %12.0f %8.2f  %s\n" name
                    base_ns cur_ns ratio
                    (if ok then "ok" else "REGRESSION"))
            base_tests;
          (* Tests present now but not in the baseline: informational. *)
          List.iter
            (fun (test, _) ->
              if not (List.mem_assoc test base_tests) then
                Printf.printf "%-45s %12s %12s %8s  new (reseed baseline)\n"
                  (group ^ "/" ^ test) "-" "-" "-")
            cur_tests)
    gated;
  Printf.printf "%s\n" (String.make 90 '-');
  if update then begin
    (* Reseed: the comparison above is informational; the current run
       becomes the new baseline verbatim. *)
    let oc =
      try open_out_bin baseline_path
      with Sys_error msg ->
        Printf.eprintf "check_bench: cannot write %s: %s\n" baseline_path msg;
        exit 2
    in
    output_string oc (read_file current_path);
    close_out oc;
    Printf.printf "baseline %s reseeded from %s\n" baseline_path current_path
  end
  else if !failures > 0 then begin
    Printf.printf
      "perf gate: %d of %d gated benchmarks regressed beyond %.0f%%\n"
      !failures !checked ((threshold -. 1.0) *. 100.0);
    exit 1
  end
  else
    Printf.printf "perf gate: all %d gated benchmarks within %.0f%% of \
                   baseline\n"
      !checked ((threshold -. 1.0) *. 100.0)
