(* Wall-clock benchmarks (Bechamel) of the real OCaml implementation.

   One group per paper artifact — fig9 (regular ping-pong), fig10
   (object-transport ping-pong), tabB (pinning by build), the ablations —
   plus micro-benchmarks of the load-bearing components (serializers, GC,
   matching queues, channel). Virtual-time results (the paper's shapes)
   come from bin/figures.exe; these benches measure how fast the simulator
   and runtime themselves run. *)

open Bechamel
open Toolkit
module W = Harness.Workloads
module S = Harness.Systems
module Om = Vm.Object_model
module Types = Vm.Types
module Gc = Vm.Gc

let tiny = { W.iters = 4; timed = 2; trials = 1 }

(* ------------------------------------------------------------------ *)
(* fig9: one full (small) ping-pong world per system                    *)
(* ------------------------------------------------------------------ *)

let fig9_bench system size =
  Test.make
    ~name:(Printf.sprintf "%s@%dB" (S.name system) size)
    (Staged.stage (fun () ->
         ignore (W.pingpong_bytes ~protocol:tiny system ~size)))

let fig9_group =
  Test.make_grouped ~name:"fig9"
    (List.map (fun s -> fig9_bench s 1024) S.fig9_systems
    @ [ fig9_bench S.Motor_sys 262_144; fig9_bench S.Native_cpp 262_144 ])

(* ------------------------------------------------------------------ *)
(* fig10: object transport per system                                   *)
(* ------------------------------------------------------------------ *)

let fig10_bench system n =
  Test.make
    ~name:(Printf.sprintf "%s@%dobj" (S.name system) n)
    (Staged.stage (fun () ->
         ignore
           (W.pingpong_objects ~protocol:tiny system ~total_objects:n
              ~total_data_bytes:4096)))

let fig10_group =
  Test.make_grouped ~name:"fig10"
    (List.map (fun s -> fig10_bench s 64) S.fig10_systems)

(* ------------------------------------------------------------------ *)
(* tabB: pinning cost by SSCLI build                                    *)
(* ------------------------------------------------------------------ *)

let tabb_group =
  Test.make_grouped ~name:"tabB"
    [
      fig9_bench S.Indiana_sscli 64;
      fig9_bench S.Indiana_sscli_fastchecked 64;
    ]

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------ *)

let abl_group =
  Test.make_grouped ~name:"ablations"
    [
      Test.make ~name:"abl1-pinning-policies"
        (Staged.stage (fun () ->
             ignore
               (Harness.Experiments.abl_pinning_policy ~protocol:tiny
                  ~size:1024 ())));
      Test.make ~name:"abl2-call-mechanisms"
        (Staged.stage (fun () ->
             ignore
               (Harness.Experiments.abl_call_mechanism ~protocol:tiny ~size:4
                  ())));
      Test.make ~name:"abl4-eager-threshold"
        (Staged.stage (fun () ->
             ignore
               (Harness.Experiments.abl_eager_threshold ~protocol:tiny ())));
      Test.make ~name:"abl5-nonblocking-unpin"
        (Staged.stage (fun () ->
             ignore (Harness.Experiments.abl_nonblocking_unpin ())));
    ]

(* ------------------------------------------------------------------ *)
(* Faults: how fast the simulator runs the lossy-transport machinery     *)
(* ------------------------------------------------------------------ *)

let fault_group =
  Test.make_grouped ~name:"faults"
    [
      Test.make ~name:"ring-clean"
        (Staged.stage (fun () ->
             ignore (W.ring ~n:2 ~rounds:4 ~size:256 ())));
      Test.make ~name:"ring-reliable-clean"
        (Staged.stage (fun () ->
             ignore
               (W.ring ~reliable:Mpi_core.Reliable.default_config ~n:2
                  ~rounds:4 ~size:256 ())));
      Test.make ~name:"ring-10pct-loss"
        (Staged.stage (fun () ->
             ignore
               (W.ring
                  ~fault:(Mpi_core.Fault.plan ~seed:7 ~drop:0.1 ())
                  ~n:2 ~rounds:4 ~size:256 ())));
    ]

(* ------------------------------------------------------------------ *)
(* Resilience: detector + ULFM recovery loop + checkpoint machinery      *)
(* ------------------------------------------------------------------ *)

let resilience_group =
  Test.make_grouped ~name:"resilience"
    [
      (* One full rank-death recovery per workload: world creation, the
         kill, heartbeat detection, revoke/agree/shrink, the retry. *)
      Test.make ~name:"kill-recover-roundrobin"
        (Staged.stage (fun () ->
             List.iter
               (fun w ->
                 ignore (Check.Explore.run_one w Check.Policy.Round_robin))
               (Check.Explore.kill_workloads ())));
      Test.make ~name:"checkpoint-roundtrip-256f64"
        (Staged.stage (fun () ->
             let w = Motor.World.create ~n:1 () in
             Motor.World.run w (fun ctx ->
                 let gc = Motor.World.gc ctx in
                 let arr = Om.alloc_array gc (Types.Eprim Types.R8) 256 in
                 for i = 0 to 255 do
                   Om.set_elem_float gc arr i (float_of_int i)
                 done;
                 let store = Motor.Checkpoint.create_store () in
                 ignore (Motor.Checkpoint.save store ctx ~step:1 arr);
                 let root, _step = Motor.Checkpoint.restore store ctx in
                 Om.free gc root;
                 Om.free gc arr)));
    ]

(* ------------------------------------------------------------------ *)
(* Component micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

(* Shared fixture: a runtime with a 256-element list (512 objects). *)
let fixture =
  lazy
    (let rt = Vm.Runtime.create () in
     let head =
       W.make_linked_list rt.Vm.Runtime.gc rt.Vm.Runtime.registry ~elems:256
         ~total_data_bytes:4096
     in
     (rt, head))

let serializer_group =
  Test.make_grouped ~name:"serializer"
    [
      Test.make ~name:"motor-linear-512obj"
        (Staged.stage (fun () ->
             let rt, head = Lazy.force fixture in
             ignore
               (Motor.Serializer.serialize rt.Vm.Runtime.gc ~visited:Linear
                  head)));
      Test.make ~name:"motor-hashed-512obj"
        (Staged.stage (fun () ->
             let rt, head = Lazy.force fixture in
             ignore
               (Motor.Serializer.serialize rt.Vm.Runtime.gc ~visited:Hashed
                  head)));
      Test.make ~name:"clr-sscli-512obj"
        (Staged.stage (fun () ->
             let rt, head = Lazy.force fixture in
             ignore
               (Baselines.Std_serializer.serialize
                  Baselines.Std_serializer.clr_sscli rt.Vm.Runtime.gc head)));
      Test.make ~name:"java-512obj"
        (Staged.stage (fun () ->
             let rt, head = Lazy.force fixture in
             ignore
               (Baselines.Std_serializer.serialize
                  Baselines.Std_serializer.java rt.Vm.Runtime.gc head)));
    ]

let fixture2048 =
  lazy
    (let rt = Vm.Runtime.create () in
     let head =
       W.make_linked_list rt.Vm.Runtime.gc rt.Vm.Runtime.registry
         ~elems:1024 ~total_data_bytes:4096
     in
     (rt, head))

let serializer_scaling_group =
  Test.make_grouped ~name:"serializer-scaling"
    [
      Test.make ~name:"motor-linear-2048obj"
        (Staged.stage (fun () ->
             let rt, head = Lazy.force fixture2048 in
             ignore
               (Motor.Serializer.serialize rt.Vm.Runtime.gc ~visited:Linear
                  head)));
      Test.make ~name:"motor-hashed-2048obj"
        (Staged.stage (fun () ->
             let rt, head = Lazy.force fixture2048 in
             ignore
               (Motor.Serializer.serialize rt.Vm.Runtime.gc ~visited:Hashed
                  head)));
    ]

let gc_group =
  Test.make_grouped ~name:"gc"
    [
      Test.make ~name:"minor-collection-with-churn"
        (Staged.stage (fun () ->
             let rt, _ = Lazy.force fixture in
             let gc = rt.Vm.Runtime.gc in
             for _ = 1 to 64 do
               Om.free gc (Om.alloc_array gc (Types.Eprim Types.I8) 32)
             done;
             Gc.collect gc ~full:false));
      Test.make ~name:"full-collection"
        (Staged.stage (fun () ->
             let rt, _ = Lazy.force fixture in
             Gc.collect rt.Vm.Runtime.gc ~full:true));
    ]

let mpi_group =
  let env = Simtime.Env.create ~cost:Simtime.Cost.native_cpp () in
  let queues = Mpi_core.Queues.create env in
  let pattern = { Mpi_core.Tag_match.m_src = 3; m_tag = 7; m_context = 0 } in
  let envelope =
    {
      Mpi_core.Packet.e_src = 3;
      e_dst = 0;
      e_tag = 7;
      e_context = 0;
      e_bytes = 64;
      e_seq = 1;
    }
  in
  Test.make_grouped ~name:"mpi-core"
    [
      Test.make ~name:"queue-post-and-match"
        (Staged.stage (fun () ->
             Mpi_core.Queues.post_recv queues
               {
                 Mpi_core.Queues.p_pattern = pattern;
                 p_sink = Mpi_core.Buffer_view.of_bytes (Bytes.create 64);
                 p_req =
                   Mpi_core.Request.create ~id:1 Mpi_core.Request.Recv_req;
               };
             ignore (Mpi_core.Queues.take_posted queues envelope)));
      Test.make ~name:"channel-send-poll"
        (Staged.stage
           (let chan = Mpi_core.Sock_channel.create env ~n_ranks:2 in
            fun () ->
              chan.Mpi_core.Channel.send ~src:0 ~dst:1
                (Mpi_core.Packet.Eager (envelope, Bytes.create 64));
              (* arrival gating needs the clock to advance *)
              Simtime.Env.charge env 1_000_000.0;
              ignore (chan.Mpi_core.Channel.poll ~rank:1)));
    ]

(* ------------------------------------------------------------------ *)
(* Collectives: how fast the simulator runs each algorithm, plus the    *)
(* queue-backlog hot path the algorithms lean on                        *)
(* ------------------------------------------------------------------ *)

let coll_bench name f =
  Test.make ~name
    (Staged.stage (fun () ->
         let env = Simtime.Env.create ~cost:Simtime.Cost.native_cpp () in
         ignore
           (Mpi_core.Mpi.run ~env ~n:8 (fun p ->
                let comm =
                  Mpi_core.Mpi.comm_world (Mpi_core.Mpi.world_of p)
                in
                f p comm))))

let coll_group =
  let module C = Mpi_core.Collectives in
  Test.make_grouped ~name:"collectives"
    [
      coll_bench "allreduce-rd-8x4KiB" (fun p comm ->
          ignore
            (C.allreduce ~algo:`Rd p comm ~op:C.sum_i64 (Bytes.create 4096)));
      coll_bench "allreduce-rab-8x64KiB" (fun p comm ->
          ignore
            (C.allreduce ~algo:`Rabenseifner p comm ~op:C.sum_i64
               (Bytes.create 65536)));
      coll_bench "bcast-scag-8x64KiB" (fun p comm ->
          C.bcast ~algo:`Scatter_allgather p comm ~root:0
            (Mpi_core.Buffer_view.of_bytes (Bytes.create 65536)));
      Test.make ~name:"queue-backlog-4096"
        (Staged.stage
           (let env = Simtime.Env.create ~cost:Simtime.Cost.native_cpp () in
            fun () ->
              (* Amortized-O(1) append: 4096 unmatched posts then one
                 match at the head. The pre-fix list append made this
                 quadratic. *)
              let queues = Mpi_core.Queues.create env in
              for i = 0 to 4095 do
                Mpi_core.Queues.post_recv queues
                  {
                    Mpi_core.Queues.p_pattern =
                      { Mpi_core.Tag_match.m_src = 1; m_tag = i; m_context = 0 };
                    p_sink = Mpi_core.Buffer_view.of_bytes (Bytes.create 8);
                    p_req =
                      Mpi_core.Request.create ~id:i Mpi_core.Request.Recv_req;
                  }
              done;
              ignore
                (Mpi_core.Queues.take_posted queues
                   {
                     Mpi_core.Packet.e_src = 1;
                     e_dst = 0;
                     e_tag = 0;
                     e_context = 0;
                     e_bytes = 8;
                     e_seq = 1;
                   })));
    ]

(* Nonblocking mirrors of the same collectives: the schedule engine's
   build + incremental-progress overhead against the blocking shims
   above, plus the overlapped-compute pattern the engine exists for. *)
let icoll_group =
  let module C = Mpi_core.Collectives in
  Test.make_grouped ~name:"icollectives"
    [
      coll_bench "iallreduce-rd-8x4KiB" (fun p comm ->
          let req, _ =
            C.iallreduce ~algo:`Rd p comm ~op:C.sum_i64 (Bytes.create 4096)
          in
          ignore (Mpi_core.Mpi.wait p req));
      coll_bench "iallreduce-rab-8x64KiB" (fun p comm ->
          let req, _ =
            C.iallreduce ~algo:`Rabenseifner p comm ~op:C.sum_i64
              (Bytes.create 65536)
          in
          ignore (Mpi_core.Mpi.wait p req));
      coll_bench "ibcast-scag-8x64KiB" (fun p comm ->
          let req =
            C.ibcast ~algo:`Scatter_allgather p comm ~root:0
              (Mpi_core.Buffer_view.of_bytes (Bytes.create 65536))
          in
          ignore (Mpi_core.Mpi.wait p req));
      coll_bench "iallreduce-overlapped-8x64KiB" (fun p comm ->
          let req, _ =
            C.iallreduce p comm ~op:C.sum_i64 (Bytes.create 65536)
          in
          for _ = 1 to 16 do
            ignore (Mpi_core.Mpi.test p req);
            Fiber.yield ()
          done;
          ignore (Mpi_core.Mpi.wait p req));
    ]

(* Hierarchical (two-level) collectives on a 4-node x 4-core world: the
   shard-reduce + leader-exchange + bcast pipeline against the flat
   algorithm on the same world, plus the O(1) sparse-descriptor hot
   path the 64k-rank scale sweep leans on. *)
let hier_bench name f =
  Test.make ~name
    (Staged.stage (fun () ->
         let env = Simtime.Env.create ~cost:Simtime.Cost.native_cpp () in
         ignore
           (Mpi_core.Mpi.run ~env
              ~topology:(Simtime.Topology.make ~nodes:4 ~cores:4)
              ~n:16
              (fun p ->
                let comm =
                  Mpi_core.Mpi.comm_world (Mpi_core.Mpi.world_of p)
                in
                f p comm))))

let hier_group =
  let module C = Mpi_core.Collectives in
  Test.make_grouped ~name:"hier"
    [
      hier_bench "allreduce-hier-16x4KiB" (fun p comm ->
          ignore
            (C.allreduce ~algo:`Hier p comm ~op:C.sum_i64
               (Bytes.create 4096)));
      hier_bench "allreduce-rd-16x4KiB" (fun p comm ->
          ignore
            (C.allreduce ~algo:`Rd p comm ~op:C.sum_i64 (Bytes.create 4096)));
      hier_bench "bcast-hier-16x64KiB" (fun p comm ->
          C.bcast ~algo:`Hier p comm ~root:0
            (Mpi_core.Buffer_view.of_bytes (Bytes.create 65536)));
      hier_bench "barrier-hier-16" (fun p comm -> C.barrier ~algo:`Hier p comm);
      Test.make ~name:"comm-64k-sparse-lookups"
        (Staged.stage (fun () ->
             (* Descriptor construction plus 1024 membership probes on a
                65536-rank communicator: no O(world) array may appear. *)
             let c = Mpi_core.Comm.range ~ctx:0 ~start:0 ~count:65536 () in
             let acc = ref 0 in
             for i = 0 to 1023 do
               acc := !acc + Mpi_core.Comm.world_rank_of c (i * 64);
               match Mpi_core.Comm.comm_rank_of c (i * 63) with
               | Some r -> acc := !acc + r
               | None -> ()
             done;
             ignore !acc));
    ]

(* One-sided RMA: the fence and lock epoch machinery, and the
   registration cache's two regimes (amortized pin-down vs per-transfer
   re-registration) on the rdma channel. *)
let rma_bench ?cache name n f =
  Test.make ~name
    (Staged.stage (fun () ->
         let cost =
           match cache with
           | None -> Simtime.Cost.native_cpp
           | Some c ->
               { Simtime.Cost.native_cpp with rdma_cache_capacity_bytes = c }
         in
         let env = Simtime.Env.create ~cost () in
         ignore
           (Mpi_core.Mpi.run ~env ~channel:`Rdma ~n (fun p ->
                let comm =
                  Mpi_core.Mpi.comm_world (Mpi_core.Mpi.world_of p)
                in
                f p comm))))

let rma_cached_put ~cache name =
  let module Rma = Mpi_core.Rma in
  (* Four distinct 64 KiB origin buffers over four fence epochs: with
     the default cache the round-2+ registrations hit; with a 4 KiB
     cache every put pays the full pin-down cost again. *)
  rma_bench ?cache name 2 (fun p comm ->
      let r = Mpi_core.Mpi.rank p in
      let bufs = Array.init 4 (fun _ -> Bytes.create 65536) in
      let mine = Bytes.create 65536 in
      let win = Rma.win_create p ~comm mine in
      for _ = 1 to 4 do
        Array.iter
          (fun b ->
            Rma.put win ~target:(1 - r) ~target_off:0 b ~off:0 ~len:65536)
          bufs;
        Rma.win_fence win
      done;
      Rma.win_free win)

let rma_group =
  let module Rma = Mpi_core.Rma in
  Test.make_grouped ~name:"rma"
    [
      rma_bench "fence-pingpong-2x4KiB" 2 (fun p comm ->
          let r = Mpi_core.Mpi.rank p in
          let mine = Bytes.create 4096 in
          let buf = Bytes.create 4096 in
          let win = Rma.win_create p ~comm mine in
          for _ = 1 to 8 do
            Rma.put win ~target:(1 - r) ~target_off:0 buf ~off:0 ~len:4096;
            Rma.win_fence win
          done;
          Rma.win_free win);
      rma_bench "lock-halo-4x1KiB" 4 (fun p comm ->
          let r = Mpi_core.Mpi.rank p in
          let n = 4 in
          let mine = Bytes.create (1024 * n) in
          let slot = Bytes.create 1024 in
          let win = Rma.win_create p ~comm mine in
          for _ = 1 to 4 do
            List.iter
              (fun nb ->
                Rma.win_lock win ~target:nb;
                Rma.put win ~target:nb ~target_off:(1024 * r) slot ~off:0
                  ~len:1024;
                Rma.win_unlock win ~target:nb)
              [ (r + 1) mod n; (r + n - 1) mod n ];
            Rma.win_fence win
          done;
          Rma.win_free win);
    ]

(* Kept out of the gated [rma] group: a whole world per run at 64 KiB
   transfer sizes fits Bechamel's OLS poorly here (r^2 ~ 0.2, estimates
   that swing far from the measured per-run time), so these rows are
   recorded in the baseline for inspection but not regression-gated.
   The figures-level rma sweep self-check is the regression guard for
   cache behaviour. *)
let rma_cache_group =
  Test.make_grouped ~name:"rma-cache"
    [
      rma_cached_put ~cache:None "put-cache-hit-2x64KiB";
      rma_cached_put ~cache:(Some 4096) "put-cache-miss-2x64KiB";
    ]

(* ------------------------------------------------------------------ *)
(* Runner                                                               *)
(* ------------------------------------------------------------------ *)

let all_tests =
  Test.make_grouped ~name:"motor"
    [
      fig9_group; fig10_group; tabb_group; abl_group; fault_group;
      resilience_group; serializer_group; serializer_scaling_group;
      gc_group; mpi_group; coll_group; icoll_group; hier_group; rma_group;
      rma_cache_group;
    ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.4) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances all_tests in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  Analyze.merge ols instances results

(* Benchmark names are "/"-joined group paths: "motor/<group>/<test>".
   The JSON form groups them back for tools/check_bench.ml. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* The speedup group is measured directly (median-of-N wall clock via
   Harness.Speedup), not through Bechamel: a multi-domain world is too
   coarse for ns/run estimation and what the gate wants is the elapsed
   time ratio across domain counts. Units are still ns in the JSON so
   one schema covers both kinds of row. *)
let speedup_rows () =
  List.map
    (fun (p : Harness.Speedup.point) ->
      ( Printf.sprintf "motor/speedup/%s@%ddom" p.Harness.Speedup.p_workload
          p.Harness.Speedup.p_domains,
        p.Harness.Speedup.p_median_wall_ms *. 1e6,
        1.0 ))
    (Harness.Speedup.sweep ())

let write_json path rows =
  let groups = Hashtbl.create 16 in
  List.iter
    (fun (name, est, _) ->
      if not (Float.is_nan est) then
        match String.split_on_char '/' name with
        | "motor" :: group :: (_ :: _ as rest) ->
            let test = String.concat "/" rest in
            let cur =
              Option.value (Hashtbl.find_opt groups group) ~default:[]
            in
            Hashtbl.replace groups group ((test, est) :: cur)
        | _ -> ())
    rows;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"schema\": 1,\n  \"unit\": \"ns/run\",\n";
  (* How parallel the recording machine was: the gate only enforces the
     wall-clock speedup ratio when this is >= 4. *)
  Buffer.add_string buf
    (Printf.sprintf "  \"cores\": %d,\n" (Harness.Speedup.cores ()));
  Buffer.add_string buf "  \"groups\": {\n";
  let group_names =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) groups [])
  in
  List.iteri
    (fun gi group ->
      Buffer.add_string buf
        (Printf.sprintf "    \"%s\": {\n" (json_escape group));
      let tests = List.sort compare (Hashtbl.find groups group) in
      List.iteri
        (fun ti (test, est) ->
          Buffer.add_string buf
            (Printf.sprintf "      \"%s\": %.1f%s\n" (json_escape test) est
               (if ti = List.length tests - 1 then "" else ",")))
        tests;
      Buffer.add_string buf
        (if gi = List.length group_names - 1 then "    }\n" else "    },\n"))
    group_names;
  Buffer.add_string buf "  }\n}\n";
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Format.printf "json written to %s@." path

let json_path () =
  let rec scan = function
    | "--json" :: path :: _ -> Some path
    | _ :: rest -> scan rest
    | [] -> None
  in
  scan (Array.to_list Sys.argv)

let () =
  (* --speedup-only: just the wall-clock sweep (the multicore CI job's
     smoke run); check_bench is then invoked with --wall-clock-only so
     the absent virtual-time groups don't count as missing. *)
  let speedup_only = Array.exists (( = ) "--speedup-only") Sys.argv in
  let rows = ref [] in
  if not speedup_only then begin
    let results = benchmark () in
    Hashtbl.iter
      (fun _measure tbl ->
        Hashtbl.iter
          (fun name ols ->
            let est =
              match Analyze.OLS.estimates ols with
              | Some (e :: _) -> e
              | Some [] | None -> nan
            in
            let r2 =
              match Analyze.OLS.r_square ols with Some r -> r | None -> nan
            in
            rows := (name, est, r2) :: !rows)
          tbl)
      results
  end;
  rows := speedup_rows () @ !rows;
  Format.printf "%-55s %15s %10s@." "benchmark" "ns/run" "r^2";
  Format.printf "%s@." (String.make 82 '-');
  let rows = List.sort (fun (a, _, _) (b, _, _) -> compare a b) !rows in
  List.iter
    (fun (name, est, r2) ->
      Format.printf "%-55s %15.0f %10.4f@." name est r2)
    rows;
  match json_path () with
  | Some path -> write_json path rows
  | None -> ()
